// Before-image (undo) log, the heart of the Vista transaction library.
//
// When a transaction first dirties a region, Vista logs the region's
// before-image. Commit discards the log atomically; abort (or crash
// recovery) applies the before-images in reverse order, restoring the
// segment to its last committed state.
//
// Vista's 5 µs transactions come from never allocating on the logging path,
// and this log is engineered to the same standard:
//
//   * before-images land in a pooled arena of slot-sized buffers recycled
//     across commit epochs — Discard / ApplyReverseInto return every slot
//     to the free list instead of freeing it;
//   * records are trivially destructible POD (asserted below), so clearing
//     the record vector is a pointer reset, not a destructor walk;
//   * a record may cover just an *extent* of its slot-aligned window rather
//     than the whole slot. Extent images live at their window-relative
//     offset inside the slot (mirror layout), which lets WidenToWindow
//     grow a partial image to the full window in place — no second slot,
//     no moving bytes already captured;
//   * regions that straddle a window boundary (never produced by the page
//     barrier) fall back to pooled byte buffers with their own free list,
//     so even the odd path stops allocating at steady state.
//
// Abort cost is therefore proportional to the bytes actually captured, not
// to slot_size × pages touched: a transaction that pokes 8 bytes into each
// of N pages logs N small extents and aborts by copying those extents back.

#ifndef FTX_SRC_STORAGE_UNDO_LOG_H_
#define FTX_SRC_STORAGE_UNDO_LOG_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/common/bytes.h"

namespace ftx_store {

struct UndoRecord {
  int64_t offset = 0;
  int64_t size = 0;
  // Pooled storage: index into the log's slot arena (image bytes at the
  // record's window-relative offset), or -1 when the region straddled a
  // window boundary and lives in an odd-size fallback buffer instead.
  int32_t slot = -1;
  int32_t odd_index = -1;
};
// The abort path clears thousands of these per epoch; keeping them POD makes
// records_.clear() free and the vector growth a memmove.
static_assert(std::is_trivially_destructible_v<UndoRecord>);
static_assert(std::is_trivially_copyable_v<UndoRecord>);

class UndoLog {
 public:
  // `slot_size` is the arena's buffer size and the alignment of slot
  // windows — the owning segment's page size.
  explicit UndoLog(size_t slot_size = 4096);

  // Logs the previous contents of [offset, offset+size) (copied from
  // `data`). Returns the record's index, stable until the next Discard /
  // ApplyReverseInto, for use with WidenToWindow.
  int32_t RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size);

  // Grows record `index` (a pooled, partial record) to cover its whole
  // slot-aligned window. `window` must point at the window's *current*
  // bytes; everything outside the already-recorded extent is by contract
  // still the committed image (the write barrier logs before mutating), so
  // copying it in completes the before-image. No-op when already whole.
  void WidenToWindow(int32_t index, const uint8_t* window);

  // Applies all before-images in reverse order into the buffer at `base`
  // (which must span at least the logged offsets), then clears the log.
  void ApplyReverseInto(uint8_t* base, size_t base_size);

  // Commit: atomically forget all undo records (slots return to the pool).
  void Discard();

  bool empty() const { return records_.empty(); }
  size_t record_count() const { return records_.size(); }
  int64_t byte_size() const { return byte_size_; }

  const std::vector<UndoRecord>& records() const { return records_; }

  // Before-image bytes of a record (pooled slot or odd-size fallback).
  const uint8_t* RecordData(const UndoRecord& record) const {
    return record.slot >= 0
               ? slots_[record.slot].get() + record.offset % static_cast<int64_t>(slot_size_)
               : odd_buffers_[record.odd_index].data();
  }

  // Pool instrumentation: total slots ever allocated. Steady state (same
  // pages re-dirtied epoch after epoch) allocates nothing, so this plateaus
  // at the high-water page count of a single epoch.
  size_t allocated_slots() const { return slots_.size(); }
  size_t free_slots() const { return free_slots_.size(); }

 private:
  size_t slot_size_;
  std::vector<UndoRecord> records_;
  int64_t byte_size_ = 0;
  // Arena of slot_size_-byte buffers; free_slots_ indexes the reusable ones.
  std::vector<std::unique_ptr<uint8_t[]>> slots_;
  std::vector<int32_t> free_slots_;
  // Fallback pool for window-straddling regions, recycled like the slots.
  std::vector<ftx::Bytes> odd_buffers_;
  std::vector<int32_t> odd_free_;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_UNDO_LOG_H_
