// Before-image (undo) log, the heart of the Vista transaction library.
//
// When a transaction first dirties a region, Vista logs the region's
// before-image. Commit discards the log atomically; abort (or crash
// recovery) applies the before-images in reverse order, restoring the
// segment to its last committed state.
//
// Vista's 5 µs transactions come from never allocating on the logging path:
// before-images land in a pooled arena of page-sized slots that are recycled
// across commit epochs. RecordBeforeImage of a slot-sized region costs one
// memcpy into a reused buffer at steady state; Discard / ApplyReverseInto
// return every slot to the free list instead of freeing it. Regions of any
// other size fall back to a per-record heap buffer (rare: the write barrier
// always logs whole pages).

#ifndef FTX_SRC_STORAGE_UNDO_LOG_H_
#define FTX_SRC_STORAGE_UNDO_LOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"

namespace ftx_store {

struct UndoRecord {
  int64_t offset = 0;
  int64_t size = 0;
  // Pooled storage: index into the log's slot arena, or -1 when the region
  // was not slot-sized and lives in `odd_bytes` instead.
  int32_t slot = -1;
  ftx::Bytes odd_bytes;
};

class UndoLog {
 public:
  // `slot_size` is the region size served from the pooled arena — the
  // owning segment's page size, since the barrier logs whole pages.
  explicit UndoLog(size_t slot_size = 4096);

  // Logs the previous contents of [offset, offset+size) (copied from `data`).
  void RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size);

  // Applies all before-images in reverse order into the buffer at `base`
  // (which must span at least the logged offsets), then clears the log.
  void ApplyReverseInto(uint8_t* base, size_t base_size);

  // Commit: atomically forget all undo records (slots return to the pool).
  void Discard();

  bool empty() const { return records_.empty(); }
  size_t record_count() const { return records_.size(); }
  int64_t byte_size() const { return byte_size_; }

  const std::vector<UndoRecord>& records() const { return records_; }

  // Before-image bytes of a record (pooled slot or odd-size fallback).
  const uint8_t* RecordData(const UndoRecord& record) const {
    return record.slot >= 0 ? slots_[record.slot].get() : record.odd_bytes.data();
  }

  // Pool instrumentation: total slots ever allocated. Steady state (same
  // pages re-dirtied epoch after epoch) allocates nothing, so this plateaus
  // at the high-water page count of a single epoch.
  size_t allocated_slots() const { return slots_.size(); }
  size_t free_slots() const { return free_slots_.size(); }

 private:
  size_t slot_size_;
  std::vector<UndoRecord> records_;
  int64_t byte_size_ = 0;
  // Arena of slot_size_-byte buffers; free_slots_ indexes the reusable ones.
  std::vector<std::unique_ptr<uint8_t[]>> slots_;
  std::vector<int32_t> free_slots_;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_UNDO_LOG_H_
