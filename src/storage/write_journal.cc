#include "src/storage/write_journal.h"

#include <cstring>

#include "src/common/check.h"

namespace ftx_store {

void WriteJournal::Write(int64_t offset, const uint8_t* data, size_t size, int64_t sequence) {
  FTX_CHECK_MSG(offset % kSectorBytes == 0, "journaled writes must be sector-aligned");
  const ftx::TimePoint now = clock_ ? clock_() : ftx::TimePoint();
  size_t consumed = 0;
  while (consumed < size) {
    DiskOp op;
    op.kind = DiskOpKind::kSectorWrite;
    op.offset = offset + static_cast<int64_t>(consumed);
    op.sequence = sequence;
    op.time = now;
    op.data.assign(static_cast<size_t>(kSectorBytes), 0);
    const size_t chunk = std::min(size - consumed, static_cast<size_t>(kSectorBytes));
    std::memcpy(op.data.data(), data + consumed, chunk);
    ops_.push_back(std::move(op));
    consumed += chunk;
  }
}

void WriteJournal::Barrier(int64_t sequence) {
  DiskOp op;
  op.kind = DiskOpKind::kBarrier;
  op.sequence = sequence;
  op.time = clock_ ? clock_() : ftx::TimePoint();
  ops_.push_back(std::move(op));
  ++barriers_;
}

void WriteJournal::Clear() {
  ops_.clear();
  barriers_ = 0;
}

ftx::Bytes WriteJournal::MaterializeImage(size_t count, int64_t image_bytes) const {
  FTX_CHECK_LE(count, ops_.size());
  ftx::Bytes image(static_cast<size_t>(image_bytes), 0);
  for (size_t i = 0; i < count; ++i) {
    const DiskOp& op = ops_[i];
    if (op.kind != DiskOpKind::kSectorWrite) {
      continue;
    }
    FTX_CHECK_LE(op.offset + kSectorBytes, image_bytes);
    std::memcpy(image.data() + op.offset, op.data.data(), static_cast<size_t>(kSectorBytes));
  }
  return image;
}

}  // namespace ftx_store
