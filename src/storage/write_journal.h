// Sector-granular write-op journal of a modeled disk.
//
// The DC-disk cost policies charge *time* for the two synchronous I/Os a
// commit performs; this journal records *what* those I/Os write and in what
// order, so the crash-state exploration engine (src/torture/) can enumerate
// every state the platters could hold if the machine died mid-commit.
//
// The model is the ALICE-style abstract persistence model: a write is split
// into atomic 512-byte sector writes, and ordering is only guaranteed across
// a Barrier (the completion of a synchronous I/O). A crash may therefore
// expose any prefix of the op stream, plus a torn final sector, plus any
// subset of the sector writes issued since the last barrier (the in-flight
// epoch the disk was free to reorder).
//
// Producers: RedoLog::Append emits the record-body sectors, a barrier, the
// commit-slot sector, and a second barrier (the paper's two-sync-I/O
// checkpoint); RedoLog::TruncateThrough emits the slot rewrite that retires
// a log prefix. The journal is owned by the DiskModel of the machine whose
// platters it describes (see DiskModel::EnableJournal).

#ifndef FTX_SRC_STORAGE_WRITE_JOURNAL_H_
#define FTX_SRC_STORAGE_WRITE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"

namespace ftx_store {

// The atomic unit of the persistence model. Every multi-sector write is
// split into whole-sector ops (the final sector zero-padded), because a
// sector is what the disk persists atomically — and what a torn write tears.
inline constexpr int64_t kSectorBytes = 512;

enum class DiskOpKind : uint8_t {
  kSectorWrite,  // one sector of payload landing at `offset`
  kBarrier,      // a sync point: everything before is durable, in order
};

struct DiskOp {
  DiskOpKind kind = DiskOpKind::kSectorWrite;
  int64_t offset = 0;  // sector-aligned byte offset (kSectorWrite only)
  ftx::Bytes data;     // exactly kSectorBytes (kSectorWrite only)
  // Redo-record sequence this op serves (commit window / truncation id).
  int64_t sequence = -1;
  // Simulated instant the op was issued (the owning commit's instant).
  ftx::TimePoint time;
};

class WriteJournal {
 public:
  // Ops are stamped with clock() when set (the computation wires the
  // simulator's Now); without a clock they carry the zero TimePoint.
  void SetClock(std::function<ftx::TimePoint()> clock) { clock_ = std::move(clock); }

  // Records a write of `size` bytes at `offset` (sector-aligned), split into
  // whole-sector ops; the final partial sector is zero-padded, matching how
  // the encoders pad what they hand the disk.
  void Write(int64_t offset, const uint8_t* data, size_t size, int64_t sequence);

  // Records a sync point (the completion of one synchronous I/O).
  void Barrier(int64_t sequence);

  const std::vector<DiskOp>& ops() const { return ops_; }
  int64_t barriers() const { return barriers_; }
  void Clear();

  // Applies ops [0, count) in order onto a zeroed disk image of
  // `image_bytes` bytes (writes beyond the image are a caller bug).
  ftx::Bytes MaterializeImage(size_t count, int64_t image_bytes) const;

 private:
  std::function<ftx::TimePoint()> clock_;
  std::vector<DiskOp> ops_;
  int64_t barriers_ = 0;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_WRITE_JOURNAL_H_
