#include "src/torture/torture.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/apps/workloads.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/obs/causal/audit.h"
#include "src/obs/prof/prof.h"
#include "src/recovery/consistency.h"
#include "src/storage/log_image.h"
#include "src/storage/write_journal.h"

namespace ftx_torture {
namespace {

using ftx_store::CommitSlot;
using ftx_store::DiskOp;
using ftx_store::DiskOpKind;
using ftx_store::EncodeRecord;
using ftx_store::kLogStartOffset;
using ftx_store::kSectorBytes;
using ftx_store::RedoRecord;

// One enumerated crash state. `gen_k` is the op index the state was
// generated at; `base` is the op prefix fully applied before any variant
// bytes (for kPrefix it equals gen_k, for kTorn* it is gen_k - 1, for
// kReorder it is the epoch begin the subset extends).
struct CrashState {
  enum class Kind { kPrefix, kTorn, kTornJunk, kReorder };
  Kind kind = Kind::kPrefix;
  size_t gen_k = 0;
  size_t base = 0;
  size_t torn_cut = 0;     // kTorn*: bytes of ops[gen_k-1] that landed
  uint64_t junk_seed = 0;  // kTornJunk: garbage beyond the cut
  int reorder_variant = 0;  // kReorder: which sampled subset of the epoch
};

// What one crash state's decode check reports back to the fold.
struct StateOutcome {
  int64_t survivor = -1;
  int survivor_class = 0;  // 0 none, 1 committed, 2 inflight, 3 violation
  bool tail_seen = false;
  bool blackbox = false;   // also decoded end-to-end from a fresh image
  std::string violation;   // empty = invariant held
};

const char* KindName(CrashState::Kind kind) {
  switch (kind) {
    case CrashState::Kind::kPrefix:
      return "prefix";
    case CrashState::Kind::kTorn:
      return "torn";
    case CrashState::Kind::kTornJunk:
      return "torn-junk";
    case CrashState::Kind::kReorder:
      return "reorder";
  }
  return "?";
}

// Derives the reorder subsets sampled at op index k: seeded strict subsets
// of the sector writes in [epoch_begin, k), sorted. Both the enumeration
// and the check phases call this, so the subsets never need storing.
std::vector<std::vector<size_t>> DeriveReorderSubsets(const std::vector<DiskOp>& ops,
                                                      uint64_t seed, size_t k,
                                                      size_t epoch_begin, int variants) {
  std::vector<size_t> epoch;
  for (size_t i = epoch_begin; i < k; ++i) {
    if (ops[i].kind == DiskOpKind::kSectorWrite) {
      epoch.push_back(i);
    }
  }
  std::vector<std::vector<size_t>> subsets;
  if (epoch.size() < 2) {
    return subsets;
  }
  ftx::Rng reorder_rng = ftx::Rng(ftx::DeriveTrialSeed(seed, static_cast<uint64_t>(k))).Fork(2);
  for (int v = 0; v < variants; ++v) {
    std::vector<size_t> chosen = epoch;
    reorder_rng.Shuffle(&chosen);
    const size_t keep =
        1 + static_cast<size_t>(reorder_rng.NextBounded(static_cast<uint64_t>(epoch.size() - 1)));
    chosen.resize(keep);
    std::sort(chosen.begin(), chosen.end());
    subsets.push_back(std::move(chosen));
  }
  return subsets;
}

// Everything the per-state checks read; immutable during exploration.
struct CheckContext {
  const std::vector<DiskOp>* ops = nullptr;
  // Concatenation of the canonical encoded records as laid out on disk from
  // kLogStartOffset (sector-aligned), plus each record's end offset in it.
  const ftx::Bytes* canonical = nullptr;
  const std::vector<int64_t>* record_end = nullptr;  // per sequence
  int64_t num_records = 0;
  // committed_at[c]: last sequence whose both sync barriers lie within the
  // first c ops (-1 = none) — the checkpoint Save-work says must survive.
  const std::vector<int64_t>* committed_at = nullptr;
  // Sorted final sequences of every completed commit window. Under group
  // commit one slot vouches for a whole window, so a crash that exposes the
  // in-flight slot legally advances the survivor to that window's *end* —
  // possibly several sequences past the last durable one, but never a
  // mid-window sequence. Unbatched runs make every entry sequence == window
  // end, reducing the legal in-flight survivor to committed + 1 exactly.
  const std::vector<int64_t>* window_ends = nullptr;
  // Slot tuples the run actually issued, keyed by sequence. A decoded slot
  // must match one of these exactly; anything else is a fabricated commit.
  const std::map<int64_t, std::vector<CommitSlot>>* issued_slots = nullptr;
};

int64_t CanonicalRecordBegin(const CheckContext& ctx, int64_t sequence) {
  return sequence == 0 ? 0 : (*ctx.record_end)[static_cast<size_t>(sequence - 1)];
}

// The end sequence of the window in flight after `committed`: the smallest
// completed-window end strictly greater than it (ctx.num_records when the
// trace holds no later window, which the m >= num_records bound rejects).
int64_t InflightWindowEnd(const CheckContext& ctx, int64_t committed) {
  auto it = std::upper_bound(ctx.window_ends->begin(), ctx.window_ends->end(), committed);
  return it == ctx.window_ends->end() ? ctx.num_records : *it;
}

// Checks one decoded-intact uncommitted tail record against the canonical
// record chain (sequence `next`); returns the violation text ("" = ok).
std::string CheckTailRecord(const CheckContext& ctx, const RedoRecord& tail, int64_t next) {
  if (next >= ctx.num_records) {
    return "intact tail record beyond the last canonical commit";
  }
  const ftx::Bytes want = EncodeRecord(tail);
  const int64_t begin = CanonicalRecordBegin(ctx, next);
  const int64_t end = (*ctx.record_end)[static_cast<size_t>(next)];
  if (static_cast<int64_t>(want.size()) != end - begin ||
      std::memcmp(want.data(), ctx.canonical->data() + begin, want.size()) != 0) {
    return "intact tail record differs from canonical record " + std::to_string(next);
  }
  return "";
}

bool SlotMatchesIssued(const CheckContext& ctx, const CommitSlot& slot) {
  auto it = ctx.issued_slots->find(slot.sequence);
  if (it == ctx.issued_slots->end()) {
    return false;
  }
  for (const CommitSlot& issued : it->second) {
    if (issued.log_start == slot.log_start && issued.log_end == slot.log_end &&
        issued.start_sequence == slot.start_sequence) {
      return true;
    }
  }
  return false;
}

std::string Describe(const CrashState& state, size_t index, const std::string& why) {
  return "state#" + std::to_string(index) + " kind=" + KindName(state.kind) +
         " k=" + std::to_string(state.gen_k) + ": " + why;
}

// Materializes one crash state's platter image from scratch. The image
// extends just past the highest sector any applied op touches. Used by the
// black-box cross-check path only; the hot path keeps a rolling image.
ftx::Bytes BuildImage(const std::vector<DiskOp>& ops, const CrashState& state,
                      const std::vector<size_t>& subset) {
  int64_t extent = kLogStartOffset;
  auto note = [&extent](const DiskOp& op) {
    if (op.kind == DiskOpKind::kSectorWrite) {
      extent = std::max(extent, op.offset + kSectorBytes);
    }
  };
  const size_t full = state.base;
  for (size_t i = 0; i < full; ++i) {
    note(ops[i]);
  }
  for (size_t i : subset) {
    note(ops[i]);
  }
  if (state.kind == CrashState::Kind::kTorn || state.kind == CrashState::Kind::kTornJunk) {
    note(ops[state.gen_k - 1]);
  }

  ftx::Bytes image(static_cast<size_t>(extent), 0);
  auto apply = [&image](const DiskOp& op) {
    if (op.kind == DiskOpKind::kSectorWrite) {
      std::memcpy(image.data() + op.offset, op.data.data(), static_cast<size_t>(kSectorBytes));
    }
  };
  for (size_t i = 0; i < full; ++i) {
    apply(ops[i]);
  }
  for (size_t i : subset) {
    apply(ops[i]);
  }

  if (state.kind == CrashState::Kind::kTorn || state.kind == CrashState::Kind::kTornJunk) {
    const DiskOp& op = ops[state.gen_k - 1];
    uint8_t* sector = image.data() + op.offset;
    // First torn_cut bytes of the new write landed. Beyond the cut, a
    // stop-early tear keeps whatever the sector held before; an interrupted
    // write scribbles deterministic garbage instead.
    std::memcpy(sector, op.data.data(), state.torn_cut);
    if (state.kind == CrashState::Kind::kTornJunk) {
      ftx::Rng junk(state.junk_seed);
      for (size_t i = state.torn_cut; i < static_cast<size_t>(kSectorBytes); ++i) {
        sector[i] = static_cast<uint8_t>(junk.NextBounded(256));
      }
    }
  }
  return image;
}

// The end-to-end check: materialize the state's image from scratch and read
// it with the real survivor decoder, exactly like a rebooted machine.
StateOutcome CheckStateBlackBox(const CheckContext& ctx, const CrashState& state, size_t index,
                                const std::vector<size_t>& subset) {
  FTX_PROF_SCOPE("torture.image_check");
  StateOutcome out;
  const ftx::Bytes image = BuildImage(*ctx.ops, state, subset);
  const ftx_store::SurvivorLog survivor = ftx_store::DecodeSurvivorImage(image);
  const int64_t committed = (*ctx.committed_at)[state.base];

  auto violate = [&](const std::string& why) {
    out.survivor_class = 3;
    out.violation = Describe(state, index, why);
  };

  out.survivor = survivor.last_sequence;

  // (a) The decode itself must never fail on the committed range: every
  // record a slot vouches for was fully barriered before the slot landed.
  if (!survivor.decode_ok) {
    violate("committed range failed to decode: " + survivor.diagnostic);
    return out;
  }

  // (b) Save-work invariant: survivor is the last fully-committed window's
  // end, or the in-flight window's end when its slot sector landed — never
  // a mid-window sequence or anything older.
  const int64_t m = survivor.last_sequence;
  const int64_t inflight = InflightWindowEnd(ctx, committed);
  if (m < committed || (m != committed && m != inflight) || m >= ctx.num_records) {
    violate("survivor " + std::to_string(m) + " outside {" + std::to_string(committed) + ", " +
            std::to_string(inflight) + "}");
    return out;
  }
  out.survivor_class = m < 0 ? 0 : (m == committed ? 1 : 2);

  // (c) No frankenstate: the winning slot must be one the run issued, and
  // the range it frames must be byte-identical to the canonical records.
  if (m >= 0) {
    CommitSlot decoded_slot;
    decoded_slot.sequence = m;
    decoded_slot.start_sequence = survivor.start_sequence;
    decoded_slot.log_start = kLogStartOffset + CanonicalRecordBegin(ctx, survivor.start_sequence);
    decoded_slot.log_end = kLogStartOffset + (*ctx.record_end)[static_cast<size_t>(m)];
    if (!SlotMatchesIssued(ctx, decoded_slot)) {
      violate("slot framing {start_seq=" + std::to_string(survivor.start_sequence) +
              ", seq=" + std::to_string(m) + "} was never issued");
      return out;
    }
    const int64_t begin = CanonicalRecordBegin(ctx, survivor.start_sequence);
    const int64_t end = (*ctx.record_end)[static_cast<size_t>(m)];
    if (static_cast<int64_t>(image.size()) < kLogStartOffset + end ||
        std::memcmp(image.data() + kLogStartOffset + begin, ctx.canonical->data() + begin,
                    static_cast<size_t>(end - begin)) != 0) {
      violate("survivor records differ from canonical commit bytes");
      return out;
    }
    if (static_cast<int64_t>(survivor.records.size()) != m - survivor.start_sequence + 1) {
      violate("decoded record count mismatch");
      return out;
    }
  }

  // (d) Intact uncommitted tail records must be the *next* canonical
  // records in sequence order — fully-landed records the crash denied a
  // commit sector. Group commit can strand several (a prefix of the
  // interrupted window); each must match its canonical counterpart, with
  // no gap in the sequence.
  if (survivor.tail_record_present && survivor.tail_status == ftx_store::DecodeStatus::kOk) {
    out.tail_seen = true;
    int64_t next = m + 1;
    for (const RedoRecord& tail : survivor.tail_records) {
      const std::string why = CheckTailRecord(ctx, tail, next);
      if (!why.empty()) {
        violate(why);
        return out;
      }
      ++next;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rolling-image checker. A window worker walks its op range once, keeping
//   * the image with ops [0, k) applied,
//   * a set of record-area sectors that differ from the canonical layout
//     (canonical record bytes, zeros beyond them),
//   * the record-area extent (highest written offset + sector).
// Each state's check is then O(slot decode + set lookup + tail framing):
// byte-equality below log_end comes from the mismatch set instead of a
// re-decode of megabytes of already-verified committed records. The
// equivalence is exact — decode output is a pure function of image bytes —
// and the seeded black-box samples above re-verify it end to end.
// ---------------------------------------------------------------------------

class RollingChecker {
 public:
  RollingChecker(const CheckContext& ctx, size_t k_begin, size_t window_end)
      : ctx_(ctx), ops_(*ctx.ops) {
    int64_t extent = kLogStartOffset;
    for (size_t i = 0; i < window_end; ++i) {
      if (ops_[i].kind == DiskOpKind::kSectorWrite) {
        extent = std::max(extent, ops_[i].offset + kSectorBytes);
      }
    }
    image_.assign(static_cast<size_t>(extent), 0);
    for (size_t i = 0; i + 1 < k_begin; ++i) {
      ApplySector(ops_[i]);
    }
    prefix_ = k_begin > 0 ? k_begin - 1 : 0;
    // Windows start right after the previous commit's final sync barrier,
    // so the prefix extent is also the current epoch's baseline extent.
    extent_before_epoch_ = record_extent_;
  }

  // Applies op `prefix_` (advancing to prefix_ + 1), remembering the
  // sector's prior content so torn variants can compose old-bytes tails.
  void Advance() {
    const DiskOp& op = ops_[prefix_];
    if (op.kind == DiskOpKind::kSectorWrite) {
      std::memcpy(prev_sector_, image_.data() + op.offset, static_cast<size_t>(kSectorBytes));
      ApplySector(op);
    }
    ++prefix_;
  }

  StateOutcome CheckPrefix(const CrashState& state, size_t index) {
    return Check(state, index, record_extent_);
  }

  StateOutcome CheckTorn(const CrashState& state, size_t index) {
    const DiskOp& op = ops_[state.gen_k - 1];
    // Compose the torn sector in place: the new write's first torn_cut
    // bytes, then either the sector's prior content or seeded garbage.
    ftx::Bytes torn(op.data.begin(), op.data.end());
    if (state.kind == CrashState::Kind::kTornJunk) {
      ftx::Rng junk(state.junk_seed);
      for (size_t i = state.torn_cut; i < static_cast<size_t>(kSectorBytes); ++i) {
        torn[i] = static_cast<uint8_t>(junk.NextBounded(256));
      }
    } else {
      std::memcpy(torn.data() + state.torn_cut, prev_sector_ + state.torn_cut,
                  static_cast<size_t>(kSectorBytes) - state.torn_cut);
    }
    WriteSector(op.offset, torn.data());
    StateOutcome out = Check(state, index, record_extent_);
    WriteSector(op.offset, op.data.data());  // restore the fully-landed write
    return out;
  }

  StateOutcome CheckReorder(const CrashState& state, size_t index,
                            const std::vector<size_t>& subset) {
    // The rolling image has every epoch write applied; this state keeps only
    // `subset`. Epoch writes land on fresh record-area sectors (the log is
    // append-only and slots are single-write epochs), so "not applied" means
    // "still zero" — zero the complement, check, and re-apply.
    std::vector<size_t> zeroed;
    size_t subset_pos = 0;
    int64_t state_extent = extent_before_epoch_;
    for (size_t i = state.base; i < state.gen_k; ++i) {
      if (ops_[i].kind != DiskOpKind::kSectorWrite) {
        continue;
      }
      FTX_CHECK_GE(ops_[i].offset, kLogStartOffset);
      if (subset_pos < subset.size() && subset[subset_pos] == i) {
        ++subset_pos;
        state_extent = std::max(state_extent, ops_[i].offset + kSectorBytes);
        continue;
      }
      WriteSector(ops_[i].offset, zero_sector_);
      zeroed.push_back(i);
    }
    StateOutcome out = Check(state, index, state_extent);
    for (size_t i : zeroed) {
      WriteSector(ops_[i].offset, ops_[i].data.data());
    }
    return out;
  }

  void NoteEpochBegin() { extent_before_epoch_ = record_extent_; }

  size_t prefix() const { return prefix_; }

 private:
  void ApplySector(const DiskOp& op) {
    if (op.kind != DiskOpKind::kSectorWrite) {
      return;
    }
    WriteSector(op.offset, op.data.data());
    if (op.offset >= kLogStartOffset) {
      record_extent_ = std::max(record_extent_, op.offset + kSectorBytes);
    }
  }

  // All image mutation funnels through here so the mismatch set stays true.
  void WriteSector(int64_t offset, const uint8_t* data) {
    std::memcpy(image_.data() + offset, data, static_cast<size_t>(kSectorBytes));
    if (offset < kLogStartOffset) {
      return;  // slot sectors are checked by decoding them, not by layout
    }
    const int64_t rel = offset - kLogStartOffset;
    bool matches;
    if (rel >= static_cast<int64_t>(ctx_.canonical->size())) {
      matches = std::all_of(data, data + kSectorBytes, [](uint8_t b) { return b == 0; });
    } else {
      matches = std::memcmp(data, ctx_.canonical->data() + rel,
                            static_cast<size_t>(kSectorBytes)) == 0;
    }
    if (matches) {
      mismatched_.erase(offset);
    } else {
      mismatched_.insert(offset);
    }
  }

  StateOutcome Check(const CrashState& state, size_t index, int64_t state_extent) {
    StateOutcome out;
    const int64_t committed = (*ctx_.committed_at)[state.base];
    auto violate = [&](const std::string& why) {
      out.survivor_class = 3;
      out.violation = Describe(state, index, why);
    };

    CommitSlot slot;
    const bool have_slot = ftx_store::SelectCommitSlot(image_, &slot);
    const int64_t m = have_slot ? slot.sequence : -1;
    out.survivor = m;

    // (b) Save-work invariant.
    const int64_t inflight = InflightWindowEnd(ctx_, committed);
    if (m < committed || (m != committed && m != inflight) || m >= ctx_.num_records) {
      violate("survivor " + std::to_string(m) + " outside {" + std::to_string(committed) +
              ", " + std::to_string(inflight) + "}");
      return out;
    }
    out.survivor_class = m < 0 ? 0 : (m == committed ? 1 : 2);

    int64_t tail_from = kLogStartOffset;
    if (have_slot) {
      // (c) No frankenstate: the slot must be one the run issued, and every
      // record-area sector below its log_end must match the canonical
      // layout byte for byte (empty mismatch set below log_end). Given
      // that, a from-scratch decode necessarily yields exactly the
      // canonical records [start_sequence, m] — the bytes are the same.
      if (!SlotMatchesIssued(ctx_, slot)) {
        violate("slot framing {start_seq=" + std::to_string(slot.start_sequence) +
                ", seq=" + std::to_string(m) + "} was never issued");
        return out;
      }
      auto first_bad = mismatched_.begin();
      if (first_bad != mismatched_.end() && *first_bad < slot.log_end) {
        violate("committed sector at offset " + std::to_string(*first_bad) +
                " differs from canonical commit bytes");
        return out;
      }
      tail_from = slot.log_end;
    }

    // (d) Tail classification over the state's own extent (framing rejects
    // partial records in O(1); CRC only runs when a record fully landed).
    // Under group commit an interrupted window can leave several intact
    // uncommitted records, but only as a sequence-contiguous prefix of the
    // window's canonical records — the walk stops at the first framing or
    // CRC failure, and any intact record out of canonical order is a hole.
    int64_t cursor = tail_from;
    int64_t next = m + 1;
    while (state_extent > cursor) {
      ftx_store::RedoRecord tail;
      int64_t rel_next = 0;
      ftx_store::DecodeStatus status = ftx_store::DecodeRecordSpan(
          image_.data() + cursor, state_extent - cursor, 0, &tail, &rel_next);
      if (status != ftx_store::DecodeStatus::kOk) {
        break;
      }
      out.tail_seen = true;
      const std::string why = CheckTailRecord(ctx_, tail, next);
      if (!why.empty()) {
        violate(why);
        return out;
      }
      cursor += rel_next;
      ++next;
    }
    return out;
  }

  const CheckContext& ctx_;
  const std::vector<DiskOp>& ops_;
  ftx::Bytes image_;
  size_t prefix_ = 0;
  std::set<int64_t> mismatched_;  // record-area sector offsets != canonical
  int64_t record_extent_ = kLogStartOffset;
  int64_t extent_before_epoch_ = kLogStartOffset;
  uint8_t prev_sector_[kSectorBytes] = {};
  uint8_t zero_sector_[kSectorBytes] = {};
};

}  // namespace

ftx_obs::Json TortureReport::ToJsonRow() const {
  ftx_obs::Json row = ftx_obs::Json::Object();
  row.Set("workload", workload);
  row.Set("protocol", protocol);
  row.Set("scale", scale);
  row.Set("seed", static_cast<int64_t>(seed));
  row.Set("processes", num_processes);
  row.Set("batch", batch_records);
  row.Set("commits", commits);
  row.Set("journal_ops", journal_ops);
  row.Set("explored_ops", explored_ops);
  row.Set("prefix_states", prefix_states);
  row.Set("torn_states", torn_states);
  row.Set("reorder_states", reorder_states);
  row.Set("crash_states", crash_states);
  row.Set("survivor_committed", survivor_committed);
  row.Set("survivor_inflight", survivor_inflight);
  row.Set("survivor_none", survivor_none);
  row.Set("tail_records_seen", tail_records_seen);
  row.Set("blackbox_states", blackbox_states);
  row.Set("replays", replays);
  row.Set("replays_consistent", replays_consistent);
  row.Set("replays_skipped_pre_initial", replays_skipped_pre_initial);
  row.Set("replays_skipped_same_step", replays_skipped_same_step);
  row.Set("violations", violations);
  row.Set("ok", ok());
  if (audited) {
    ftx_obs::Json audit = ftx_obs::Json::Object();
    audit.Set("schema_version", ftx_causal::kCausalAuditSchemaVersion);
    audit.Set("violations", audit_violations);
    audit.Set("events", audit_events);
    audit.Set("incidents_total", audit_incidents);
    ftx_obs::Json dumps = ftx_obs::Json::Array();
    for (const std::string& dump : audit_incident_dumps) {
      dumps.Push(dump);
    }
    audit.Set("incident_dumps", std::move(dumps));
    row.Set("audit", audit);
  }
  std::string joined;
  for (const std::string& d : violation_diagnostics) {
    if (!joined.empty()) {
      joined += "; ";
    }
    joined += d;
  }
  row.Set("violation_diagnostics", joined);
  return row;
}

TortureReport ExploreCommitPath(const TortureSpec& spec, ftx::TrialPool* pool) {
  std::unique_ptr<ftx::TrialPool> serial;
  if (pool == nullptr) {
    serial = std::make_unique<ftx::TrialPool>(1);
    pool = serial.get();
  }

  TortureReport report;
  report.workload = spec.workload;
  report.protocol = spec.protocol;
  report.seed = spec.seed;
  report.scale = spec.scale > 0
                     ? spec.scale
                     : ftx_apps::DefaultScale(spec.workload, /*full_scale=*/false);
  report.batch_records = spec.batch_records > 1 ? spec.batch_records : 1;

  // Group-commit policy applied to every recoverable run of the exploration
  // (traced and replayed alike, so the replay timeline reproduces the
  // traced one). Captured by value: replay lambdas outlive this frame's
  // locals on the shard workers.
  const int64_t batch_records = report.batch_records;
  auto apply_batch = [batch_records](ftx::ComputationOptions* o) {
    if (batch_records > 1) {
      o->group_commit.enabled = true;
      o->group_commit.max_records = batch_records;
    }
  };

  ftx::RunSpec base;
  base.workload = spec.workload;
  base.scale = report.scale;
  base.seed = spec.seed;
  base.interactive = spec.interactive;
  base.protocol = spec.protocol;
  base.store = ftx::StoreKind::kDisk;
  base.tweak_options = apply_batch;

  // Phase 1: failure-free baseline — the consistency oracle's reference.
  ftx::RunSpec reference_spec = base;
  reference_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput reference = ftx::RunExperiment(reference_spec);

  // Phase 2: the traced run. Machine 0's disk journals every redo-log
  // write; the journal never changes a simulated quantity, so this run's
  // timeline is identical to an unjournaled one.
  ftx::RunSpec traced_spec = base;
  traced_spec.mode = ftx_dc::RuntimeMode::kRecoverable;
  traced_spec.audit = spec.audit;
  traced_spec.tweak_options = [apply_batch](ftx::ComputationOptions* o) {
    o->journal_disk_writes = true;
    apply_batch(o);
  };
  std::unique_ptr<ftx::Computation> traced = ftx::BuildComputation(traced_spec);
  ftx::ComputationResult traced_result = traced->Run();
  FTX_CHECK_MSG(traced_result.all_done, "torture trace run did not complete");
  report.num_processes = traced->num_processes();
  ftx_causal::CausalAudit* audit = traced->audit();
  if (audit != nullptr) {
    audit->Finalize();  // idempotent (Run already finalized)
    report.audited = true;
    report.audit_violations = audit->violations();
    report.audit_events = audit->ledger().total_appended();
  }
  // Records a flight dump of the traced run's causal tail for a torture
  // violation found in a later (offline) phase. Called only from the
  // single-threaded fold loops below — never from sharded workers.
  auto record_violation_dump = [&report, audit](const std::string& diagnostic) {
    if (audit == nullptr) {
      return;
    }
    const size_t retained_before = audit->flight().incidents().size();
    audit->RecordIncident("torture violation: " + diagnostic, std::nullopt);
    ++report.audit_incidents;
    const auto& incidents = audit->flight().incidents();
    if (incidents.size() > retained_before && report.audit_incident_dumps.size() < 5) {
      report.audit_incident_dumps.push_back(incidents.back().dump);
    }
  };

  const ftx_store::WriteJournal* journal = traced->write_journal(0);
  FTX_CHECK_MSG(journal != nullptr, "traced run has no write journal");
  const std::vector<DiskOp>& ops = journal->ops();
  const std::vector<ftx_store::RedoRecord> canonical_records = traced->redo_log(0)->records();
  report.commits = static_cast<int64_t>(canonical_records.size());
  report.journal_ops = static_cast<int64_t>(ops.size());
  FTX_CHECK_MSG(report.commits >= 2, "torture needs a multi-commit run");

  // Canonical on-disk layout: records append contiguously from
  // kLogStartOffset, so the expected committed bytes for survivor m are a
  // prefix of this concatenation.
  ftx::Bytes canonical;
  std::vector<int64_t> record_end;
  std::vector<ftx::TimePoint> commit_time(canonical_records.size());
  for (const ftx_store::RedoRecord& record : canonical_records) {
    ftx::Bytes encoded = ftx_store::EncodeRecord(record);
    ftx::AppendRaw(&canonical, encoded.data(), encoded.size());
    record_end.push_back(static_cast<int64_t>(canonical.size()));
  }
  for (const DiskOp& op : ops) {
    if (op.sequence >= 0 && op.sequence < report.commits &&
        commit_time[static_cast<size_t>(op.sequence)] == ftx::TimePoint()) {
      commit_time[static_cast<size_t>(op.sequence)] = op.time;
    }
  }

  // committed_at[c] = the checkpoint durable after the first c ops: the
  // highest sequence with both of its sync barriers in the prefix. Counted
  // per sequence (not barriers/2) so an odd barrier — e.g. a journaled log
  // truncation — can never skew the count. Both barriers of a group-commit
  // window carry the window's *last* sequence, so under batching this jumps
  // straight from one window end to the next — mid-window sequences are
  // never reported durable. window_ends collects those completed-window
  // last sequences (sorted, deduped) for the in-flight survivor bound.
  std::vector<int64_t> committed_at(ops.size() + 1, -1);
  std::vector<int64_t> window_ends;
  {
    int64_t committed = -1;
    int64_t barrier_seq = -1;
    int barrier_count = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == DiskOpKind::kBarrier) {
        if (ops[i].sequence != barrier_seq) {
          barrier_seq = ops[i].sequence;
          barrier_count = 0;
        }
        if (++barrier_count == 2) {
          committed = std::max(committed, barrier_seq);
          if (window_ends.empty() || window_ends.back() < barrier_seq) {
            window_ends.push_back(barrier_seq);
          }
        }
      }
      committed_at[i + 1] = committed;
    }
  }

  // Slot tuples the run issued, decoded from the slot-area writes in the
  // trace. (One per sequence unless the log was truncated, which rewrites
  // the newest slot with a narrowed range.)
  std::map<int64_t, std::vector<CommitSlot>> issued_slots;
  for (const DiskOp& op : ops) {
    if (op.kind == DiskOpKind::kSectorWrite && op.offset < kLogStartOffset) {
      CommitSlot slot;
      FTX_CHECK_MSG(
          ftx_store::DecodeCommitSlot(op.data.data(), op.data.size(), &slot),
          "traced slot write does not decode");
      issued_slots[slot.sequence].push_back(slot);
    }
  }

  // Depth cap: explore only the ops of the first max_commit_windows
  // commits (every op carries its commit's sequence).
  size_t explored_end = ops.size();
  if (spec.max_commit_windows > 0) {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].sequence >= spec.max_commit_windows) {
        explored_end = i;
        break;
      }
    }
  }
  report.explored_ops = static_cast<int64_t>(explored_end);

  // Phase 3: enumerate crash states. All randomness derives from
  // (spec.seed, op index), so the state list — and therefore the whole
  // report — is identical for any pool size. Reorder subsets are re-derived
  // at check time rather than stored (the epochs can hold thousands of
  // sector writes).
  std::vector<CrashState> states;
  states.push_back(CrashState{});  // the empty disk (crash before any write)
  {
    size_t epoch_begin = 0;
    size_t epoch_writes = 0;
    for (size_t k = 1; k <= explored_end; ++k) {
      const DiskOp& op = ops[k - 1];
      if (op.kind == DiskOpKind::kBarrier) {
        epoch_begin = k;
        epoch_writes = 0;
        CrashState prefix;
        prefix.gen_k = k;
        prefix.base = k;
        states.push_back(prefix);
        continue;
      }

      CrashState prefix;
      prefix.gen_k = k;
      prefix.base = k;
      states.push_back(prefix);

      ftx::Rng torn_rng =
          ftx::Rng(ftx::DeriveTrialSeed(spec.seed, static_cast<uint64_t>(k))).Fork(1);
      for (int v = 0; v < spec.torn_variants; ++v) {
        CrashState torn;
        torn.kind = v % 2 == 0 ? CrashState::Kind::kTorn : CrashState::Kind::kTornJunk;
        torn.gen_k = k;
        torn.base = k - 1;
        torn.torn_cut = 1 + static_cast<size_t>(
                                torn_rng.NextBounded(static_cast<uint64_t>(kSectorBytes - 1)));
        torn.junk_seed = torn_rng.NextU64();
        states.push_back(torn);
      }

      ++epoch_writes;
      // The unsynced epoch now holds `epoch_writes` sector writes (all of
      // [epoch_begin, k)'s writes plus this one); a crash exposes any
      // subset of them, so sample strict, non-trivial subsets.
      if (epoch_writes >= 2) {
        for (int v = 0; v < spec.reorder_variants; ++v) {
          CrashState reorder;
          reorder.kind = CrashState::Kind::kReorder;
          reorder.gen_k = k;
          reorder.base = epoch_begin;
          reorder.reorder_variant = v;
          states.push_back(reorder);
        }
      }
    }
  }

  for (const CrashState& state : states) {
    switch (state.kind) {
      case CrashState::Kind::kPrefix:
        ++report.prefix_states;
        break;
      case CrashState::Kind::kTorn:
      case CrashState::Kind::kTornJunk:
        ++report.torn_states;
        break;
      case CrashState::Kind::kReorder:
        ++report.reorder_states;
        break;
    }
  }
  report.crash_states = static_cast<int64_t>(states.size());

  // Window plan: one unit of parallel work per commit window (the ops
  // sharing one sequence number). States were generated in op order, so a
  // window owns a contiguous state range.
  struct Window {
    size_t k_begin = 1;       // first op index (1-based prefix) in range
    size_t k_end = 0;         // last op index in range (inclusive)
    size_t state_begin = 0;
    size_t state_end = 0;
  };
  std::vector<Window> windows;
  for (size_t k = 1; k <= explored_end; ++k) {
    if (windows.empty() || ops[k - 1].sequence != ops[windows.back().k_begin - 1].sequence) {
      Window w;
      w.k_begin = k;
      windows.push_back(w);
    }
    windows.back().k_end = k;
  }
  {
    size_t cursor = 0;
    for (Window& w : windows) {
      w.state_begin = cursor;
      while (cursor < states.size() && states[cursor].gen_k <= w.k_end) {
        ++cursor;
      }
      w.state_end = cursor;
    }
    FTX_CHECK_EQ(cursor, states.size());
  }

  CheckContext ctx;
  ctx.ops = &ops;
  ctx.canonical = &canonical;
  ctx.record_end = &record_end;
  ctx.num_records = report.commits;
  ctx.committed_at = &committed_at;
  ctx.window_ends = &window_ends;
  ctx.issued_slots = &issued_slots;

  // Phase 4: check every state, one parallel task per commit window, each
  // with a rolling image. A seeded handful of states per window (plus the
  // window's first and last) additionally run the full black-box decode
  // and must agree with the incremental verdict.
  std::vector<std::vector<StateOutcome>> window_outcomes = ftx::RunSharded(
      *pool, static_cast<int64_t>(windows.size()), spec.seed, [&](int64_t wi, uint64_t) {
        const Window& w = windows[static_cast<size_t>(wi)];
        std::vector<StateOutcome> outcomes(w.state_end - w.state_begin);

        std::set<size_t> blackbox;
        if (w.state_end > w.state_begin) {
          blackbox.insert(w.state_begin);
          blackbox.insert(w.state_end - 1);
          ftx::Rng sample(ftx::DeriveTrialSeed(spec.seed, 0x9e00000 + static_cast<uint64_t>(wi)));
          for (int s = 0; s < 6; ++s) {
            blackbox.insert(w.state_begin +
                            static_cast<size_t>(sample.NextBounded(
                                static_cast<uint64_t>(w.state_end - w.state_begin))));
          }
        }

        RollingChecker checker(ctx, w.k_begin, w.k_end);
        // Reorder subsets for the op index currently being processed.
        size_t subsets_k = 0;
        std::vector<std::vector<size_t>> subsets;

        for (size_t si = w.state_begin; si < w.state_end; ++si) {
          const CrashState& state = states[si];
          while (checker.prefix() < state.gen_k) {
            if (ops[checker.prefix()].kind == DiskOpKind::kBarrier) {
              checker.Advance();
              checker.NoteEpochBegin();
            } else {
              checker.Advance();
            }
          }

          StateOutcome out;
          const std::vector<size_t>* subset = nullptr;
          switch (state.kind) {
            case CrashState::Kind::kPrefix:
              out = checker.CheckPrefix(state, si);
              break;
            case CrashState::Kind::kTorn:
            case CrashState::Kind::kTornJunk:
              out = checker.CheckTorn(state, si);
              break;
            case CrashState::Kind::kReorder:
              if (subsets_k != state.gen_k) {
                subsets = DeriveReorderSubsets(ops, spec.seed, state.gen_k, state.base,
                                               spec.reorder_variants);
                subsets_k = state.gen_k;
              }
              subset = &subsets[static_cast<size_t>(state.reorder_variant)];
              out = checker.CheckReorder(state, si, *subset);
              break;
          }

          if (blackbox.count(si) != 0) {
            out.blackbox = true;
            static const std::vector<size_t> kNoSubset;
            StateOutcome reference_out =
                CheckStateBlackBox(ctx, state, si, subset != nullptr ? *subset : kNoSubset);
            if (reference_out.survivor_class == 3 && out.survivor_class != 3) {
              out = reference_out;  // the end-to-end decoder found a violation
              out.blackbox = true;
            } else if (reference_out.survivor != out.survivor ||
                       reference_out.survivor_class != out.survivor_class ||
                       reference_out.tail_seen != out.tail_seen) {
              out.survivor_class = 3;
              out.violation = Describe(
                  state, si,
                  "incremental and black-box decodes disagree (survivor " +
                      std::to_string(out.survivor) + " vs " +
                      std::to_string(reference_out.survivor) + ")");
            }
          }
          outcomes[si - w.state_begin] = std::move(out);
        }
        return outcomes;
      });

  std::set<int64_t> survivors;
  for (const std::vector<StateOutcome>& window : window_outcomes) {
    for (const StateOutcome& outcome : window) {
      survivors.insert(outcome.survivor);
      if (outcome.tail_seen) {
        ++report.tail_records_seen;
      }
      if (outcome.blackbox) {
        ++report.blackbox_states;
      }
      switch (outcome.survivor_class) {
        case 0:
          ++report.survivor_none;
          break;
        case 1:
          ++report.survivor_committed;
          break;
        case 2:
          ++report.survivor_inflight;
          break;
        default:
          ++report.violations;
          if (report.violation_diagnostics.size() < 5) {
            report.violation_diagnostics.push_back(outcome.violation);
          }
          record_violation_dump(outcome.violation);
          break;
      }
    }
  }

  if (!spec.replay) {
    return report;
  }

  // Phase 5: replay recovery from every distinct survivor checkpoint. The
  // emulation kills process 0 one nanosecond after the step that produced
  // commit m (commits within a step share the step's instant), installs the
  // survivor's records as the redo log recovery reads, and demands a
  // consistent, complete run.
  std::vector<int64_t> replay_survivors;
  for (int64_t m : survivors) {
    if (m < 0) {
      // Crash before commit 0's slot landed. Commit 0 happens inside
      // Initialize(), before the event loop, so there is no instant at
      // which a scheduled failure could observe this state; the decode
      // phase has already verified it.
      ++report.replays_skipped_pre_initial;
      continue;
    }
    bool same_step_successor = false;
    for (int64_t later = m + 1; later < report.commits; ++later) {
      if (commit_time[static_cast<size_t>(later)] == commit_time[static_cast<size_t>(m)]) {
        same_step_successor = true;
      } else {
        break;
      }
    }
    if (same_step_successor && report.num_processes > 1) {
      // A later commit in the same step already released retained messages
      // to peers; rewinding the log below that commit would fake a crash
      // the network has already contradicted. Single-process workloads
      // re-derive the lost outputs deterministically, so they replay.
      ++report.replays_skipped_same_step;
      continue;
    }
    replay_survivors.push_back(m);
  }

  struct ReplayOutcome {
    bool consistent = false;
    bool completed = false;
    std::string diagnostic;
  };
  std::vector<ReplayOutcome> replays = ftx::RunSharded(
      *pool, static_cast<int64_t>(replay_survivors.size()), spec.seed,
      [&](int64_t i, uint64_t) {
        FTX_PROF_SCOPE("torture.survivor_replay");
        const int64_t m = replay_survivors[static_cast<size_t>(i)];
        ftx::RunSpec replay_spec = base;
        replay_spec.mode = ftx_dc::RuntimeMode::kRecoverable;
        std::unique_ptr<ftx::Computation> computation = ftx::BuildComputation(replay_spec);

        const ftx::TimePoint kill_at =
            commit_time[static_cast<size_t>(m)] + ftx::Nanoseconds(1);
        const ftx::Duration recovery_delay = ftx::Milliseconds(1);
        computation->ScheduleStopFailure(0, kill_at, recovery_delay);
        // Swap in the survivor's log between the kill and the recovery it
        // schedules (same instant ordering is by insertion, and this event
        // lands strictly earlier anyway).
        computation->sim().ScheduleAt(kill_at + recovery_delay / 2, [&computation, m,
                                                                    &canonical_records]() {
          std::vector<ftx_store::RedoRecord> survivors_records(
              canonical_records.begin(), canonical_records.begin() + m + 1);
          computation->redo_log(0)->RestoreForRecovery(std::move(survivors_records));
        });

        ftx::ComputationResult result = computation->Run();
        ftx::RunOutput recovered = ftx::Collect(*computation, result);
        ftx_rec::ConsistencyResult consistency = ftx_rec::CheckConsistentRecovery(
            reference.outputs, recovered.outputs, computation->num_processes(),
            /*require_complete=*/true);

        ReplayOutcome outcome;
        outcome.consistent = consistency.consistent;
        outcome.completed = result.all_done;
        if (!consistency.consistent) {
          outcome.diagnostic = consistency.diagnostic;
        } else if (!result.all_done) {
          outcome.diagnostic = "recovered run did not complete";
        }
        return outcome;
      });

  for (size_t i = 0; i < replays.size(); ++i) {
    ++report.replays;
    if (replays[i].consistent && replays[i].completed) {
      ++report.replays_consistent;
    } else {
      ++report.violations;
      const std::string diagnostic = "replay survivor=" +
                                     std::to_string(replay_survivors[i]) + ": " +
                                     replays[i].diagnostic;
      if (report.violation_diagnostics.size() < 5) {
        report.violation_diagnostics.push_back(diagnostic);
      }
      record_violation_dump(diagnostic);
    }
  }
  return report;
}

}  // namespace ftx_torture
