// Crash-state exploration engine ("torture") for the DC-disk commit path.
//
// The paper's Save-work guarantee assumes checkpoints are atomic and ordered
// on stable storage (§4.2: two synchronous I/Os per commit). The cost models
// charge for those I/Os; this engine checks that the *byte-level* design
// behind them actually delivers atomicity at every point a crash could land:
//
//   1. Run the workload once, failure-free, in baseline mode — the reference
//      visible-output stream for the consistency oracle.
//   2. Run it again, recoverable on DC-disk, with the machine-0 disk's
//      write-op journal enabled: every commit leaves its record sectors, a
//      barrier, the commit-slot sector, and a second barrier in an ordered
//      op trace (src/storage/write_journal.h).
//   3. Enumerate crash states in the ALICE style:
//        - every prefix of the op trace (a crash between any two sector
//          writes);
//        - torn-final-sector variants: the last in-flight sector half
//          written, either stopping early (old bytes beyond the cut) or
//          trailing garbage (interrupted write scribbles the remainder);
//        - reorder-within-barrier variants: random subsets of the sector
//          writes issued since the last sync barrier (the disk was free to
//          reorder or drop any of them).
//   4. For each state, reconstruct the platter image and assert the
//      Save-work invariant: the survivor is the last fully-committed
//      checkpoint or the one before it — never a blend — and every decoded
//      record is byte-identical to the canonical record the run committed.
//      States shard by commit window; within a window a rolling image plus
//      a sector-level mismatch set gives each state an O(epoch) check that
//      is exactly equivalent to a from-scratch decode (decode output is a
//      pure function of the image bytes, and bytes below log_end are
//      shared), while seeded samples of every window additionally run the
//      full DecodeSurvivorImage path end-to-end and must agree.
//   5. For each distinct survivor checkpoint, replay: re-run the workload,
//      kill process 0 just after that commit's step, install the survivor
//      records as the redo log recovery reads, and require the recovered
//      run to complete with output the consistency oracle accepts
//      (ftx_rec::CheckConsistentRecovery against the reference).
//
// Exploration shards across ftx::TrialPool; every random choice (torn cut
// points, reorder subsets) derives from DeriveTrialSeed(seed, op_index),
// so reports are byte-identical for any --jobs value.

#ifndef FTX_SRC_TORTURE_TORTURE_H_
#define FTX_SRC_TORTURE_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/obs/json.h"

namespace ftx_torture {

struct TortureSpec {
  std::string workload = "nvi";
  int scale = 0;  // 0 = ftx_apps::DefaultScale(workload, /*full_scale=*/false)
  uint64_t seed = 1;
  std::string protocol = "cpvs";
  bool interactive = true;
  // Torn-final-sector variants generated per sector-write prefix (each
  // picks a seeded cut point; half stop-early, half trailing-garbage).
  int torn_variants = 2;
  // Reorder variants generated per prefix whose unsynced epoch holds more
  // than one in-flight sector write (each applies a seeded strict subset).
  int reorder_variants = 2;
  // Caps exploration to the ops of the first N commit windows (0 = every
  // window). Smoke mode uses this to bound depth; --full leaves it at 0.
  int max_commit_windows = 0;
  // Group-commit window size for the traced and replayed runs (maps to
  // ftx_store::BatchPolicy::max_records; <= 1 = the historical
  // one-sync-pair-per-commit path). When > 1 the traced run stages commits
  // through the CommitPipeline and whole windows persist under a single
  // barrier pair, so the enumeration explores batched window shapes: the
  // in-flight slot may advance the survivor to the window's *end* (several
  // sequences past the last durable one), and an interrupted window must
  // leave all-or-a-prefix of its records intact — never a hole.
  int64_t batch_records = 1;
  // Replay every distinct survivor checkpoint through recovery (phase 5).
  // Decode-level exploration (phase 4) always runs.
  bool replay = true;
  // Live causal audit (src/obs/causal/) on the traced recoverable run: the
  // online Save-work check must report zero violations, and every torture
  // violation additionally records a flight-recorder dump of the traced
  // run's causal tail. Strictly observational, so the traced timeline (and
  // hence the op trace and every crash state) is unchanged.
  bool audit = false;
};

struct TortureReport {
  std::string workload;
  std::string protocol;
  int scale = 0;
  uint64_t seed = 0;
  int num_processes = 0;
  int64_t batch_records = 1;  // group-commit window size the runs used

  // Trace-run shape.
  int64_t commits = 0;        // redo records the traced machine-0 run wrote
  int64_t journal_ops = 0;    // sector writes + barriers in the op trace
  int64_t explored_ops = 0;   // ops within the max_commit_windows cap

  // Crash states explored, by kind.
  int64_t prefix_states = 0;
  int64_t torn_states = 0;
  int64_t reorder_states = 0;
  int64_t crash_states = 0;  // total

  // Decode-phase outcomes. "committed" = the survivor is the last commit
  // whose second sync completed; "inflight" = the in-flight commit's slot
  // sector happened to land, legally advancing the survivor by one.
  int64_t survivor_committed = 0;
  int64_t survivor_inflight = 0;
  int64_t survivor_none = 0;      // no commit slot valid yet (early states)
  int64_t tail_records_seen = 0;  // intact-but-uncommitted tail records
  // States additionally decoded end-to-end by DecodeSurvivorImage on a
  // materialized from-scratch image, cross-checked against the incremental
  // verdict (first/last of each commit window plus seeded samples).
  int64_t blackbox_states = 0;

  // Replay-phase outcomes.
  int64_t replays = 0;
  int64_t replays_consistent = 0;
  int64_t replays_skipped_pre_initial = 0;  // survivor precedes commit 0
  int64_t replays_skipped_same_step = 0;    // later commit in the same step
                                            // (multi-process: retained
                                            // messages make the emulation
                                            // unfaithful; see docs/TORTURE.md)

  // Invariant violations (must be zero) and the first few diagnostics.
  int64_t violations = 0;
  std::vector<std::string> violation_diagnostics;

  // Causal audit of the traced run (TortureSpec::audit). audit_violations
  // counts online Save-work findings (must be zero — the traced run is
  // failure-free); audit_incident_dumps holds the flight-recorder dump
  // recorded for each torture violation (capped like the diagnostics).
  bool audited = false;
  int64_t audit_violations = 0;
  int64_t audit_events = 0;  // causal-ledger appends in the traced run
  int64_t audit_incidents = 0;
  std::vector<std::string> audit_incident_dumps;

  bool ok() const { return violations == 0 && audit_violations == 0; }

  // Flat ftx.bench-results row (diagnostics joined, capped).
  ftx_obs::Json ToJsonRow() const;
};

// Runs the full exploration for one workload. `pool` shards the decode and
// replay phases; nullptr runs serially (identical results either way).
TortureReport ExploreCommitPath(const TortureSpec& spec, ftx::TrialPool* pool);

}  // namespace ftx_torture

#endif  // FTX_SRC_TORTURE_TORTURE_H_
