#include "src/vista/heap.h"

#include "src/common/check.h"

namespace ftx_vista {
namespace {

constexpr int64_t kAlign = 8;

int64_t AlignUp(int64_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

SegmentHeap::SegmentHeap(Segment* segment, int64_t base, int64_t size)
    : segment_(segment), base_(base), size_(size) {
  FTX_CHECK(segment != nullptr);
  FTX_CHECK_GE(base, 0);
  FTX_CHECK_GT(size, static_cast<int64_t>(sizeof(Header)) + kAlign);
  FTX_CHECK_LE(static_cast<size_t>(base + size), segment->size());
}

void SegmentHeap::Format() {
  Header header;
  header.magic = kFreeMagic;
  header.block_size = size_;
  segment_->WriteValue(base_, header);
  bytes_in_use_ = 0;
  blocks_in_use_ = 0;
}

int64_t SegmentHeap::PayloadToBlock(int64_t payload_offset) const {
  return payload_offset - static_cast<int64_t>(sizeof(Header));
}

ftx::Result<int64_t> SegmentHeap::Alloc(int64_t size) {
  FTX_CHECK_GT(size, 0);
  const int64_t need =
      static_cast<int64_t>(sizeof(Header)) + AlignUp(size) + static_cast<int64_t>(sizeof(uint64_t));

  int64_t cursor = base_;
  const int64_t end = base_ + size_;
  while (cursor < end) {
    Header header = segment_->Read<Header>(cursor);
    FTX_CHECK_MSG(header.magic == kUsedMagic || header.magic == kFreeMagic,
                  "heap metadata corrupt at offset %lld", static_cast<long long>(cursor));
    if (header.magic == kFreeMagic) {
      // Lazy coalescing: absorb following free blocks.
      int64_t next = cursor + header.block_size;
      while (next < end) {
        Header next_header = segment_->Read<Header>(next);
        if (next_header.magic != kFreeMagic) {
          break;
        }
        header.block_size += next_header.block_size;
        next = cursor + header.block_size;
      }
      if (header.block_size >= need) {
        // Split if the remainder can hold a minimal block.
        const int64_t min_block =
            static_cast<int64_t>(sizeof(Header)) + kAlign + static_cast<int64_t>(sizeof(uint64_t));
        int64_t remainder = header.block_size - need;
        int64_t block_size = header.block_size;
        if (remainder >= min_block) {
          block_size = need;
          Header free_header;
          free_header.magic = kFreeMagic;
          free_header.block_size = remainder;
          segment_->WriteValue(cursor + need, free_header);
        }
        Header used;
        used.magic = kUsedMagic;
        used.block_size = block_size;
        segment_->WriteValue(cursor, used);
        // Tail guard sits at the end of the block.
        segment_->WriteValue(cursor + block_size - static_cast<int64_t>(sizeof(uint64_t)),
                             kTailGuard);
        bytes_in_use_ += block_size;
        ++blocks_in_use_;
        return cursor + static_cast<int64_t>(sizeof(Header));
      }
      // Record the coalesced size so future sweeps skip faster.
      segment_->WriteValue(cursor, header);
    }
    cursor += header.block_size;
  }
  return ftx::ResourceExhaustedError("segment heap arena exhausted");
}

ftx::Status SegmentHeap::Free(int64_t payload_offset) {
  int64_t block = PayloadToBlock(payload_offset);
  if (block < base_ || block >= base_ + size_) {
    return ftx::InvalidArgumentError("free of pointer outside arena");
  }
  Header header = segment_->Read<Header>(block);
  if (header.magic != kUsedMagic) {
    return ftx::InvalidArgumentError("free of non-allocated block");
  }
  header.magic = kFreeMagic;
  segment_->WriteValue(block, header);
  bytes_in_use_ -= header.block_size;
  --blocks_in_use_;
  return ftx::Status::Ok();
}

std::vector<std::pair<int64_t, int64_t>> SegmentHeap::LiveBlocks() const {
  std::vector<std::pair<int64_t, int64_t>> blocks;
  int64_t cursor = base_;
  const int64_t end = base_ + size_;
  while (cursor < end) {
    Header header = segment_->Read<Header>(cursor);
    if (header.magic != kUsedMagic && header.magic != kFreeMagic) {
      break;  // corrupt metadata; CheckGuards will report it
    }
    if (header.block_size < static_cast<int64_t>(sizeof(Header)) ||
        cursor + header.block_size > end) {
      break;
    }
    if (header.magic == kUsedMagic) {
      int64_t payload = cursor + static_cast<int64_t>(sizeof(Header));
      int64_t payload_size =
          header.block_size - static_cast<int64_t>(sizeof(Header)) -
          static_cast<int64_t>(sizeof(uint64_t));
      blocks.emplace_back(payload, payload_size);
    }
    cursor += header.block_size;
  }
  return blocks;
}

ftx::Status SegmentHeap::CheckGuards() const {
  int64_t cursor = base_;
  const int64_t end = base_ + size_;
  while (cursor < end) {
    Header header = segment_->Read<Header>(cursor);
    if (header.magic != kUsedMagic && header.magic != kFreeMagic) {
      return ftx::DataLossError("heap header corrupt at offset " + std::to_string(cursor));
    }
    if (header.block_size < static_cast<int64_t>(sizeof(Header)) ||
        cursor + header.block_size > end) {
      return ftx::DataLossError("heap block size corrupt at offset " + std::to_string(cursor));
    }
    if (header.magic == kUsedMagic) {
      uint64_t tail = segment_->Read<uint64_t>(cursor + header.block_size -
                                               static_cast<int64_t>(sizeof(uint64_t)));
      if (tail != kTailGuard) {
        return ftx::DataLossError("heap tail guard smashed at offset " + std::to_string(cursor));
      }
    }
    cursor += header.block_size;
  }
  if (cursor != end) {
    return ftx::DataLossError("heap walk overran arena end");
  }
  return ftx::Status::Ok();
}

}  // namespace ftx_vista
