// Free-list heap allocator inside a Vista segment.
//
// Applications allocate their dynamic structures (editor buffers, octree
// nodes, database pages) from a SegmentHeap so that all application state
// lives in the persistent segment and is covered by commits. Every block
// carries magic guard words before and after the payload; CheckGuards() is
// the "inspect guard bands at the ends of its buffers and malloc'ed data"
// consistency check the paper recommends (§2.6) for crashing soon after a
// fault — the heap-bit-flip fault study relies on it.

#ifndef FTX_SRC_VISTA_HEAP_H_
#define FTX_SRC_VISTA_HEAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/vista/segment.h"

namespace ftx_vista {

class SegmentHeap {
 public:
  // Manages [base, base+size) of `segment`. Call Format() once before use
  // (or after a fresh segment is created).
  SegmentHeap(Segment* segment, int64_t base, int64_t size);

  // Initializes the free list over the whole arena.
  void Format();

  // Allocates `size` payload bytes; returns the payload offset within the
  // segment, or an error when the arena is exhausted (first-fit search).
  ftx::Result<int64_t> Alloc(int64_t size);

  // Frees a payload offset returned by Alloc. Coalescing is deferred:
  // adjacent free blocks merge lazily during allocation sweeps.
  ftx::Status Free(int64_t payload_offset);

  // Walks every block validating header magics and payload guard words.
  // Returns kDataLoss on the first violation — the caller treats this as a
  // detected fault (and typically crashes the process).
  ftx::Status CheckGuards() const;

  // All currently allocated blocks as (payload offset, payload size) pairs,
  // by walking the arena. Used by the fault injector to pick heap targets.
  std::vector<std::pair<int64_t, int64_t>> LiveBlocks() const;

  int64_t bytes_in_use() const { return bytes_in_use_; }
  int64_t blocks_in_use() const { return blocks_in_use_; }
  int64_t arena_base() const { return base_; }
  int64_t arena_size() const { return size_; }

 private:
  // Block layout: [Header][payload][uint64 tail guard]
  struct Header {
    uint64_t magic;      // kUsedMagic or kFreeMagic
    int64_t block_size;  // total bytes including header and tail guard
  };
  static constexpr uint64_t kUsedMagic = 0xa110c8edba5eba11ULL;
  static constexpr uint64_t kFreeMagic = 0xf4eeb10cf4eeb10cULL;
  static constexpr uint64_t kTailGuard = 0x6a61bd5461172a11ULL;

  int64_t PayloadToBlock(int64_t payload_offset) const;

  Segment* segment_;
  int64_t base_;
  int64_t size_;
  int64_t bytes_in_use_ = 0;
  int64_t blocks_in_use_ = 0;
};

}  // namespace ftx_vista

#endif  // FTX_SRC_VISTA_HEAP_H_
