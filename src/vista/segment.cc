#include "src/vista/segment.h"

#include <cstring>

#include "src/common/crc32.h"
#include "src/obs/prof/prof.h"

namespace ftx_vista {

Segment::Segment(size_t size, size_t page_size) : page_size_(page_size), undo_(page_size) {
  FTX_CHECK_GT(size, 0u);
  FTX_CHECK_GT(page_size, 0u);
  // Round the segment up to whole pages.
  num_pages_ = (size + page_size - 1) / page_size;
  data_.assign(num_pages_ * page_size, 0);
  size_t words = (num_pages_ + 63) / 64;
  dirty_bits_.assign(words, 0);
  pending_bits_.assign(words, 0);
  volatile_bits_.assign(words, 0);
  undo_index_.assign(num_pages_, -1);
}

void Segment::ReadRaw(int64_t offset, void* dst, size_t size) const {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  std::memcpy(dst, data_.data() + offset, size);
}

void Segment::MarkDirtyPending(int64_t page) {
  uint64_t& word = dirty_bits_[page >> 6];
  uint64_t bit = 1ull << (page & 63);
  if ((word & bit) != 0) {
    return;
  }
  // First touch since the last commit — what Vista's copy-on-write trap
  // catches. The before-image stays pending (the page still holds committed
  // content) until a write actually changes its bytes.
  word |= bit;
  pending_bits_[page >> 6] |= bit;
  dirty_order_.push_back(page);
  if (!TestBit(volatile_bits_, page)) {
    ++persisted_dirty_;
  }
}

void Segment::MaterializeBeforeImage(int64_t page, int64_t begin, int64_t end) {
  uint64_t& word = pending_bits_[page >> 6];
  uint64_t bit = 1ull << (page & 63);
  const int64_t page_begin = page * static_cast<int64_t>(page_size_);
  const int64_t page_end = page_begin + static_cast<int64_t>(page_size_);
  if ((word & bit) == 0) {
    // Already materialized this epoch. A whole-page image covers any write;
    // a partial extent covers writes inside it. A write escaping the extent
    // widens the image to the whole page — everything outside the extent
    // still holds committed bytes (only barrier-covered stores mutate, and
    // they all landed inside it), so the live page completes the image.
    const int32_t index = undo_index_[page];
    if (index < 0) {
      return;
    }
    const ftx_store::UndoRecord& record = undo_.records()[index];
    if (record.size == static_cast<int64_t>(page_size_) ||
        (begin >= record.offset && end <= record.offset + record.size)) {
      return;
    }
    undo_.WidenToWindow(index, data_.data() + page_begin);
    return;
  }
  word &= ~bit;
  // Capture the touched bytes of this page, rounded out to chunk boundaries.
  int64_t lo = begin > page_begin ? begin : page_begin;
  int64_t hi = end < page_end ? end : page_end;
  lo = page_begin + (lo - page_begin) / kExtentChunk * kExtentChunk;
  hi = page_begin + (hi - page_begin + kExtentChunk - 1) / kExtentChunk * kExtentChunk;
  if (hi > page_end) {
    hi = page_end;
  }
  undo_index_[page] =
      undo_.RecordBeforeImage(lo, data_.data() + lo, static_cast<size_t>(hi - lo));
}

void Segment::UpdateFastRange(int64_t page) {
  if (TestBit(pending_bits_, page)) {
    // A pending page cannot be written through the fast path (the barrier
    // must see the first content-changing store), so leave it empty.
    fast_begin_ = 0;
    fast_end_ = 0;
    return;
  }
  const int32_t index = undo_index_[page];
  if (index < 0) {
    fast_begin_ = 0;
    fast_end_ = 0;
    return;
  }
  // The fast range is exactly the materialized extent: stores inside it are
  // covered by undo, stores outside must come back through the barrier so
  // the image can widen.
  const ftx_store::UndoRecord& record = undo_.records()[index];
  fast_begin_ = record.offset;
  fast_end_ = record.offset + record.size;
}

void Segment::WriteSlow(int64_t offset, const void* src, size_t size) {
  FTX_PROF_SCOPE("barrier.first_touch");
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  if (size == 0) {
    return;
  }
  int64_t first = offset / static_cast<int64_t>(page_size_);
  int64_t last = (offset + static_cast<int64_t>(size) - 1) / static_cast<int64_t>(page_size_);
  for (int64_t page = first; page <= last; ++page) {
    MarkDirtyPending(page);
  }
  if (std::memcmp(data_.data() + offset, src, size) == 0) {
    // Silent store: the bytes are already there. The pages count as dirty
    // (the COW trap fired) but no before-image copy and no store happen.
    UpdateFastRange(last);
    return;
  }
  for (int64_t page = first; page <= last; ++page) {
    MaterializeBeforeImage(page, offset, offset + static_cast<int64_t>(size));
  }
  std::memcpy(data_.data() + offset, src, size);
  UpdateFastRange(last);
}

uint8_t* Segment::OpenForWriteSlow(int64_t offset, size_t size) {
  FTX_PROF_SCOPE("barrier.first_touch");
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  if (size > 0) {
    int64_t first = offset / static_cast<int64_t>(page_size_);
    int64_t last = (offset + static_cast<int64_t>(size) - 1) / static_cast<int64_t>(page_size_);
    for (int64_t page = first; page <= last; ++page) {
      // The caller mutates through a raw pointer the barrier cannot watch:
      // materialize eagerly.
      MarkDirtyPending(page);
      MaterializeBeforeImage(page, offset, offset + static_cast<int64_t>(size));
    }
    UpdateFastRange(last);
  }
  return data_.data() + offset;
}

void Segment::ClearDirtyTracking() {
  for (int64_t page : dirty_order_) {
    dirty_bits_[page >> 6] &= ~(1ull << (page & 63));
    pending_bits_[page >> 6] &= ~(1ull << (page & 63));
    undo_index_[page] = -1;
  }
  dirty_order_.clear();
  persisted_dirty_ = 0;
  fast_begin_ = 0;
  fast_end_ = 0;
}

void Segment::Commit() {
  undo_.Discard();
  ClearDirtyTracking();
}

void Segment::Abort() {
  // Pages still pending were never modified; the undo log holds exactly the
  // pages that changed.
  undo_.ApplyReverseInto(data_.data(), data_.size());
  ClearDirtyTracking();
}

void Segment::ResetToZero() {
  std::memset(data_.data(), 0, data_.size());
  undo_.Discard();
  ClearDirtyTracking();
}

void Segment::MarkVolatile(int64_t offset, int64_t size) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_GT(size, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset + size), data_.size());
  int64_t first = offset / static_cast<int64_t>(page_size_);
  int64_t last = (offset + size - 1) / static_cast<int64_t>(page_size_);
  for (int64_t page = first; page <= last; ++page) {
    uint64_t& word = volatile_bits_[page >> 6];
    uint64_t bit = 1ull << (page & 63);
    if ((word & bit) != 0) {
      continue;
    }
    word |= bit;
    // An already-dirty page leaving the persisted set keeps the count exact.
    if ((dirty_bits_[page >> 6] & bit) != 0) {
      --persisted_dirty_;
    }
  }
}

void Segment::ZeroVolatileRanges() {
  for (size_t word = 0; word < volatile_bits_.size(); ++word) {
    uint64_t bits = volatile_bits_[word];
    while (bits != 0) {
      int64_t page = static_cast<int64_t>(word * 64) + std::countr_zero(bits);
      bits &= bits - 1;
      std::memset(data_.data() + page * static_cast<int64_t>(page_size_), 0, page_size_);
    }
  }
}

void Segment::InstallPage(int64_t offset, const uint8_t* image, size_t size) {
  // Installing a page behind the barrier while a transaction holds dirty
  // tracking would leave stale undo images and a stale fast range; recovery
  // always runs with tracking clear.
  FTX_CHECK(!HasUncommittedChanges());
  FTX_CHECK_EQ(size, page_size_);
  FTX_CHECK_EQ(offset % static_cast<int64_t>(page_size_), 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  std::memcpy(data_.data() + offset, image, size);
}

uint32_t Segment::Checksum(int64_t offset, size_t size) const {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  uint32_t crc = 0;
  size_t cursor = static_cast<size_t>(offset);
  size_t end = cursor + size;
  while (cursor < end) {
    size_t chunk = end - cursor < page_size_ ? end - cursor : page_size_;
    crc = ftx::Crc32Extend(crc, data_.data() + cursor, chunk);
    cursor += chunk;
  }
  return crc;
}

void Segment::CorruptBit(int64_t offset, int bit) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LT(static_cast<size_t>(offset), data_.size());
  FTX_CHECK(bit >= 0 && bit < 8);
  uint8_t* p = OpenForWrite(offset, 1);
  *p ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace ftx_vista
