#include "src/vista/segment.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/crc32.h"

namespace ftx_vista {

Segment::Segment(size_t size, size_t page_size) : page_size_(page_size) {
  FTX_CHECK_GT(size, 0u);
  FTX_CHECK_GT(page_size, 0u);
  // Round the segment up to whole pages.
  size_t pages = (size + page_size - 1) / page_size;
  data_.assign(pages * page_size, 0);
}

void Segment::ReadRaw(int64_t offset, void* dst, size_t size) const {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  std::memcpy(dst, data_.data() + offset, size);
}

void Segment::TouchPages(int64_t offset, size_t size) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + size, data_.size());
  if (size == 0) {
    return;
  }
  int64_t first = offset / static_cast<int64_t>(page_size_);
  int64_t last = (offset + static_cast<int64_t>(size) - 1) / static_cast<int64_t>(page_size_);
  for (int64_t page = first; page <= last; ++page) {
    if (dirty_pages_.insert(page).second) {
      // First touch since the last commit: log the page's before-image,
      // exactly what Vista's copy-on-write trap does.
      undo_.RecordBeforeImage(page * static_cast<int64_t>(page_size_),
                              data_.data() + page * static_cast<int64_t>(page_size_), page_size_);
    }
  }
}

void Segment::Write(int64_t offset, const void* src, size_t size) {
  TouchPages(offset, size);
  std::memcpy(data_.data() + offset, src, size);
}

uint8_t* Segment::OpenForWrite(int64_t offset, size_t size) {
  TouchPages(offset, size);
  return data_.data() + offset;
}

void Segment::Commit() {
  undo_.Discard();
  dirty_pages_.clear();
}

void Segment::Abort() {
  undo_.ApplyReverseInto(data_.data(), data_.size());
  dirty_pages_.clear();
}

void Segment::ResetToZero() {
  std::fill(data_.begin(), data_.end(), 0);
  undo_.Discard();
  dirty_pages_.clear();
}

std::vector<std::pair<int64_t, ftx::Bytes>> Segment::DirtyPages() const {
  std::vector<std::pair<int64_t, ftx::Bytes>> pages;
  pages.reserve(dirty_pages_.size());
  for (int64_t page : dirty_pages_) {
    if (IsPageVolatile(page)) {
      continue;  // recomputable: never persisted
    }
    int64_t offset = page * static_cast<int64_t>(page_size_);
    pages.emplace_back(offset,
                       ftx::Bytes(data_.begin() + offset,
                                  data_.begin() + offset + static_cast<int64_t>(page_size_)));
  }
  return pages;
}

void Segment::MarkVolatile(int64_t offset, int64_t size) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_GT(size, 0);
  FTX_CHECK_LE(static_cast<size_t>(offset + size), data_.size());
  int64_t first = offset / static_cast<int64_t>(page_size_);
  int64_t last = (offset + size - 1) / static_cast<int64_t>(page_size_);
  for (int64_t page = first; page <= last; ++page) {
    volatile_pages_.insert(page);
  }
}

bool Segment::IsPageVolatile(int64_t page) const {
  return volatile_pages_.count(page) != 0;
}

size_t Segment::persisted_dirty_page_count() const {
  size_t n = 0;
  for (int64_t page : dirty_pages_) {
    if (!IsPageVolatile(page)) {
      ++n;
    }
  }
  return n;
}

void Segment::ZeroVolatileRanges() {
  for (int64_t page : volatile_pages_) {
    int64_t offset = page * static_cast<int64_t>(page_size_);
    std::fill(data_.begin() + offset, data_.begin() + offset + static_cast<int64_t>(page_size_),
              0);
  }
}

void Segment::InstallPage(int64_t offset, const ftx::Bytes& image) {
  FTX_CHECK_EQ(image.size(), page_size_);
  FTX_CHECK_EQ(offset % static_cast<int64_t>(page_size_), 0);
  FTX_CHECK_LE(static_cast<size_t>(offset) + image.size(), data_.size());
  std::memcpy(data_.data() + offset, image.data(), image.size());
}

uint32_t Segment::Checksum() const { return ftx::Crc32(data_.data(), data_.size()); }

void Segment::CorruptBit(int64_t offset, int bit) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LT(static_cast<size_t>(offset), data_.size());
  FTX_CHECK(bit >= 0 && bit < 8);
  uint8_t* p = OpenForWrite(offset, 1);
  *p ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace ftx_vista
