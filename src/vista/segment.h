// Vista-style persistent segment.
//
// Vista maps a process's state into a persistent memory segment and traps
// updates with copy-on-write, logging before-images of updated regions to an
// undo log; commit atomically discards the log and resets page protections
// (§3). This class reproduces that design with explicit write barriers
// standing in for hardware page protection: every store goes through
// Write/WriteValue/OpenForWrite, which logs the before-image of each page on
// its first touch since the last commit.
//
// The barrier is the hottest real-CPU path in the reproduction, so it is
// engineered in the spirit of Vista's own allocation-free 5 µs transactions:
//
//   * dirty and volatile page sets are bitmaps (one bit per page), with an
//     append-order dirty-index vector so commit clears exactly the bits it
//     set — no tree operations anywhere on the path;
//   * a cached writable range (the last touched, materialized page) makes
//     the common same-page store a bounds check, two compares, and the
//     store itself;
//   * before-images are *lazy*: first touch only marks the page
//     dirty-pending. The physical copy into a pooled undo slot happens the
//     first time a write actually changes the page's bytes — a store of a
//     value already present (a silent store) never pays the copy.
//     OpenForWrite hands out a raw pointer, so it materializes eagerly;
//   * before-images are *extents*, not whole pages: the first
//     content-changing touch captures only the touched range, rounded out
//     to 256-byte chunks, and the fast range narrows to that extent. A
//     later write escaping the extent widens the image to the whole page in
//     place (at most one widen per page per epoch). A transaction that
//     pokes a few bytes per page logs and aborts kilobytes, not
//     page-size × pages.
//
// Dirty-page counts, persisted counts, and undo_bytes() are identical to an
// eager implementation — the simulated cost models charge logical pages
// touched, never host work — so laziness changes host CPU time only.
//
// Abort (or crash recovery with the segment in reliable memory) replays the
// undo log in reverse, restoring the last committed state exactly; pages
// whose before-image was never materialized were never modified, so they
// already hold committed content.

#ifndef FTX_SRC_VISTA_SEGMENT_H_
#define FTX_SRC_VISTA_SEGMENT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/storage/undo_log.h"

namespace ftx_vista {

class Segment {
 public:
  explicit Segment(size_t size, size_t page_size = 4096);

  size_t size() const { return data_.size(); }
  size_t page_size() const { return page_size_; }

  // --- reads (no barrier needed) ---
  const uint8_t* data() const { return data_.data(); }

  template <typename T>
  T Read(int64_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    ReadRaw(offset, &value, sizeof(T));
    return value;
  }
  void ReadRaw(int64_t offset, void* dst, size_t size) const;

  // --- writes (barriered) ---

  // Copies `size` bytes from src into the segment, logging before-images of
  // any pages touched for the first time since the last commit.
  void Write(int64_t offset, const void* src, size_t size) {
    // Wrap-free containment test: rel bounds the start (offset < fast_begin_
    // wraps huge and fails — naively adding size instead would wrap back
    // into range for starts just below it), then range - rel can't
    // underflow. Passing implies the write sits wholly inside the fast
    // range, which is always a valid, already-materialized page — so the
    // fast path needs no separate bounds check. Everything else, including
    // out-of-bounds arguments, takes the slow path, which checks.
    const uint64_t rel = static_cast<uint64_t>(offset - fast_begin_);
    const uint64_t range = static_cast<uint64_t>(fast_end_ - fast_begin_);
    if (rel <= range && size <= range - rel) {
      std::memcpy(data_.data() + offset, src, size);
      return;
    }
    WriteSlow(offset, src, size);
  }

  template <typename T>
  void WriteValue(int64_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(offset, &value, sizeof(T));
  }

  // Marks [offset, offset+size) writable (logging before-images) and returns
  // a raw pointer for in-place mutation. The pointer is valid until the next
  // call that resizes nothing — the segment never reallocates.
  uint8_t* OpenForWrite(int64_t offset, size_t size) {
    const uint64_t rel = static_cast<uint64_t>(offset - fast_begin_);
    const uint64_t range = static_cast<uint64_t>(fast_end_ - fast_begin_);
    if (rel <= range && size <= range - rel) {
      return data_.data() + offset;
    }
    return OpenForWriteSlow(offset, size);
  }

  // --- transaction boundary ---

  // Atomically discards the undo log; the current contents become the
  // committed state.
  void Commit();

  // Restores the last committed state from the undo log.
  void Abort();

  // Wipes the segment to zeros and clears the undo log / dirty set. Used by
  // DC-disk recovery before replaying the redo chain (the volatile segment
  // did not survive the failure).
  void ResetToZero();

  // --- partial-state commit (the paper's §6 future-work direction) ---

  // Declares [offset, offset+size) *recomputable*: its pages are excluded
  // from what commits persist ("reducing the comprehensiveness of the state
  // saved"). After recovery the range reads as zeros and the application
  // rebuilds it (App::OnRecovered). Corruption confined to a volatile range
  // is therefore never captured by a commit — §2.6's observation that
  // recomputing unsaved state can avoid retriggering the bug.
  void MarkVolatile(int64_t offset, int64_t size);

  // Pages currently dirty that a commit must persist (volatile excluded).
  size_t persisted_dirty_page_count() const { return persisted_dirty_; }

  // Zero-fills every volatile range (recovery's post-rollback step).
  void ZeroVolatileRanges();

  bool IsPageVolatile(int64_t page) const {
    return page >= 0 && static_cast<size_t>(page) < num_pages_ &&
           ((volatile_bits_[page >> 6] >> (page & 63)) & 1) != 0;
  }

  // --- instrumentation for commit cost models & fault injection ---

  size_t dirty_page_count() const { return dirty_order_.size(); }
  // Undo bytes a commit retires: one whole-page before-image per dirty page
  // (the model quantity — independent of whether the lazy copy happened).
  int64_t undo_bytes() const {
    return static_cast<int64_t>(dirty_order_.size()) * static_cast<int64_t>(page_size_);
  }
  bool HasUncommittedChanges() const { return !dirty_order_.empty(); }

  // Zero-copy commit path: invokes visitor(offset, page_data, page_size)
  // for every dirty non-volatile page, in ascending segment order, reading
  // straight from the live segment. This is what redo-record serialization
  // consumes; nothing is copied until the record itself is built.
  template <typename Visitor>
  void ForEachPersistedDirtyPage(Visitor&& visitor) const {
    for (size_t word = 0; word < dirty_bits_.size(); ++word) {
      uint64_t bits = dirty_bits_[word] & ~volatile_bits_[word];
      while (bits != 0) {
        int64_t page = static_cast<int64_t>(word * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        visitor(page * static_cast<int64_t>(page_size_),
                data_.data() + page * static_cast<int64_t>(page_size_), page_size_);
      }
    }
  }

  // Overwrites a page image directly (used when applying a redo record
  // during DC-disk recovery). Does not log undo.
  void InstallPage(int64_t offset, const uint8_t* image, size_t size);
  void InstallPage(int64_t offset, const ftx::Bytes& image) {
    InstallPage(offset, image.data(), image.size());
  }

  // CRC of the full segment (consistency checks / test equality), computed
  // page-chunk-at-a-time with the incremental CRC.
  uint32_t Checksum() const { return Checksum(0, data_.size()); }

  // CRC of [offset, offset+size): lets guard/consistency checks hash just
  // the structure they care about instead of the whole segment.
  uint32_t Checksum(int64_t offset, size_t size) const;

  // Fault injection: flips a bit. The flip goes through the write barrier,
  // because real Vista's copy-on-write traps wild stores exactly like
  // intended ones — which is why rollback alone cleans corruption, and why
  // recovery only fails when a commit lands after the corruption (Lose-work)
  // or reexecution deterministically regenerates it.
  void CorruptBit(int64_t offset, int bit);

 private:
  // Before-image extents round out to this granularity: big enough that a
  // run of small neighboring stores coalesces into one capture, small
  // enough that a single poked word doesn't log a whole page.
  static constexpr int64_t kExtentChunk = 256;

  void WriteSlow(int64_t offset, const void* src, size_t size);
  uint8_t* OpenForWriteSlow(int64_t offset, size_t size);
  void MarkDirtyPending(int64_t page);
  // Ensures the undo log covers the about-to-change bytes [begin, end) of
  // `page` (clipped to the page): captures a chunk-rounded extent on the
  // first content-changing touch, widens to the whole page when a later
  // write escapes the captured extent.
  void MaterializeBeforeImage(int64_t page, int64_t begin, int64_t end);
  void UpdateFastRange(int64_t page);
  void ClearDirtyTracking();

  bool TestBit(const std::vector<uint64_t>& bits, int64_t page) const {
    return ((bits[page >> 6] >> (page & 63)) & 1) != 0;
  }

  size_t page_size_;
  size_t num_pages_ = 0;
  ftx::Bytes data_;
  // One bit per page. dirty: touched since last commit. pending: dirty but
  // the before-image copy has not been materialized (content still equals
  // the committed image). volatile: excluded from commits (recomputable).
  std::vector<uint64_t> dirty_bits_;
  std::vector<uint64_t> pending_bits_;
  std::vector<uint64_t> volatile_bits_;
  std::vector<int64_t> dirty_order_;  // dirty pages in first-touch order
  // Per page: index of its undo record this epoch (-1 none). Lets the
  // barrier find and widen a page's partial before-image in O(1).
  std::vector<int32_t> undo_index_;
  size_t persisted_dirty_ = 0;
  // [fast_begin_, fast_end_): the last touched page's materialized extent —
  // writes inside it are already covered by undo, so they need no
  // bookkeeping at all. Empty (0,0) when invalid.
  int64_t fast_begin_ = 0;
  int64_t fast_end_ = 0;
  ftx_store::UndoLog undo_;
};

}  // namespace ftx_vista

#endif  // FTX_SRC_VISTA_SEGMENT_H_
