// Vista-style persistent segment.
//
// Vista maps a process's state into a persistent memory segment and traps
// updates with copy-on-write, logging before-images of updated regions to an
// undo log; commit atomically discards the log and resets page protections
// (§3). This class reproduces that design with explicit write barriers
// standing in for hardware page protection: every store goes through
// Write/OpenForWrite, which logs the before-image of each page on its first
// touch since the last commit.
//
// Abort (or crash recovery with the segment in reliable memory) replays the
// undo log in reverse, restoring the last committed state exactly.

#ifndef FTX_SRC_VISTA_SEGMENT_H_
#define FTX_SRC_VISTA_SEGMENT_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/storage/undo_log.h"

namespace ftx_vista {

class Segment {
 public:
  explicit Segment(size_t size, size_t page_size = 4096);

  size_t size() const { return data_.size(); }
  size_t page_size() const { return page_size_; }

  // --- reads (no barrier needed) ---
  const uint8_t* data() const { return data_.data(); }

  template <typename T>
  T Read(int64_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    ReadRaw(offset, &value, sizeof(T));
    return value;
  }
  void ReadRaw(int64_t offset, void* dst, size_t size) const;

  // --- writes (barriered) ---

  // Copies `size` bytes from src into the segment, logging before-images of
  // any pages touched for the first time since the last commit.
  void Write(int64_t offset, const void* src, size_t size);

  template <typename T>
  void WriteValue(int64_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(offset, &value, sizeof(T));
  }

  // Marks [offset, offset+size) writable (logging before-images) and returns
  // a raw pointer for in-place mutation. The pointer is valid until the next
  // call that resizes nothing — the segment never reallocates.
  uint8_t* OpenForWrite(int64_t offset, size_t size);

  // --- transaction boundary ---

  // Atomically discards the undo log; the current contents become the
  // committed state.
  void Commit();

  // Restores the last committed state from the undo log.
  void Abort();

  // Wipes the segment to zeros and clears the undo log / dirty set. Used by
  // DC-disk recovery before replaying the redo chain (the volatile segment
  // did not survive the failure).
  void ResetToZero();

  // --- partial-state commit (the paper's §6 future-work direction) ---

  // Declares [offset, offset+size) *recomputable*: its pages are excluded
  // from what commits persist ("reducing the comprehensiveness of the state
  // saved"). After recovery the range reads as zeros and the application
  // rebuilds it (App::OnRecovered). Corruption confined to a volatile range
  // is therefore never captured by a commit — §2.6's observation that
  // recomputing unsaved state can avoid retriggering the bug.
  void MarkVolatile(int64_t offset, int64_t size);

  // Pages currently dirty that a commit must persist (volatile excluded).
  size_t persisted_dirty_page_count() const;

  // Zero-fills every volatile range (recovery's post-rollback step).
  void ZeroVolatileRanges();

  bool IsPageVolatile(int64_t page) const;

  // --- instrumentation for commit cost models & fault injection ---

  size_t dirty_page_count() const { return dirty_pages_.size(); }
  int64_t undo_bytes() const { return undo_.byte_size(); }
  bool HasUncommittedChanges() const { return !dirty_pages_.empty(); }

  // Copies of the currently dirty pages (offset, image), for redo-log
  // checkpointing.
  std::vector<std::pair<int64_t, ftx::Bytes>> DirtyPages() const;

  // Overwrites a page image directly (used when applying a redo record
  // during DC-disk recovery). Does not log undo.
  void InstallPage(int64_t offset, const ftx::Bytes& image);

  // CRC of the full segment (consistency checks / test equality).
  uint32_t Checksum() const;

  // Fault injection: flips a bit. The flip goes through the write barrier,
  // because real Vista's copy-on-write traps wild stores exactly like
  // intended ones — which is why rollback alone cleans corruption, and why
  // recovery only fails when a commit lands after the corruption (Lose-work)
  // or reexecution deterministically regenerates it.
  void CorruptBit(int64_t offset, int bit);

 private:
  void TouchPages(int64_t offset, size_t size);

  size_t page_size_;
  ftx::Bytes data_;
  std::set<int64_t> dirty_pages_;  // page indices dirty since last commit
  std::set<int64_t> volatile_pages_;  // excluded from commits (recomputable)
  ftx_store::UndoLog undo_;
};

}  // namespace ftx_vista

#endif  // FTX_SRC_VISTA_SEGMENT_H_
