// Per-application tests: determinism, functional correctness against
// reference models, and event-mix sanity for the Fig. 8 workloads.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "src/apps/magic.h"
#include "src/apps/nvi.h"
#include "src/apps/postgres.h"
#include "src/apps/treadmarks.h"
#include "src/apps/workloads.h"
#include "src/apps/xpilot.h"
#include "src/core/computation.h"
#include "src/core/experiment.h"

namespace {

ftx::RunOutput RunWorkload(const std::string& workload, int scale, uint64_t seed,
                   const std::string& protocol = "cbndvs") {
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.scale = scale;
  spec.seed = seed;
  spec.protocol = protocol;
  return ftx::RunExperiment(spec);
}

// --- determinism: same seed, same visible stream ---

TEST(Apps, DeterministicWorkloads) {
  for (const char* workload : {"nvi", "magic", "postgres", "treadmarks"}) {
    int scale = workload == std::string("treadmarks") ? 4 : 60;
    ftx::RunOutput a = RunWorkload(workload, scale, 5);
    ftx::RunOutput b = RunWorkload(workload, scale, 5);
    ASSERT_TRUE(a.result.all_done) << workload;
    ASSERT_EQ(a.outputs.size(), b.outputs.size()) << workload;
    for (size_t i = 0; i < a.outputs.size(); ++i) {
      EXPECT_EQ(a.outputs.events()[i].payload, b.outputs.events()[i].payload)
          << workload << " visible " << i;
    }
  }
}

TEST(Apps, DifferentSeedsDiverge) {
  ftx::RunOutput a = RunWorkload("nvi", 60, 5);
  ftx::RunOutput b = RunWorkload("nvi", 60, 6);
  bool any_diff = a.outputs.size() != b.outputs.size();
  for (size_t i = 0; !any_diff && i < a.outputs.size(); ++i) {
    any_diff = a.outputs.events()[i].payload != b.outputs.events()[i].payload;
  }
  EXPECT_TRUE(any_diff);
}

// --- nvi ---

TEST(Nvi, BufferMatchesSimpleGapBufferModel) {
  // Replay the same script against a trivial string-based reference.
  const int keys = 300;
  std::vector<ftx::Bytes> script = ftx_apps::Nvi::MakeScript(77, keys);

  std::string reference;
  size_t cursor = 0;
  for (const ftx::Bytes& key : script) {
    if (key.size() == 1 && key[0] >= 0x20) {
      reference.insert(reference.begin() + static_cast<int64_t>(cursor),
                       static_cast<char>(key[0]));
      ++cursor;
    } else if (key.size() == 2) {
      switch (key[1]) {
        case 'L':
          cursor = cursor > 0 ? cursor - 1 : 0;
          break;
        case 'R':
          cursor = std::min(cursor + 1, reference.size());
          break;
        case 'D':
          if (cursor > 0) {
            reference.erase(reference.begin() + static_cast<int64_t>(cursor) - 1);
            --cursor;
          }
          break;
        case 'N':
          reference.insert(reference.begin() + static_cast<int64_t>(cursor), '\n');
          ++cursor;
          break;
        default:
          break;
      }
    }
  }

  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = keys;
  spec.seed = 77;
  auto computation = ftx::BuildComputation(spec);
  computation->Run();
  std::string buffer = ftx_apps::Nvi::BufferContents(computation->runtime(0));
  EXPECT_EQ(buffer, reference);
}

TEST(Nvi, EventMixMatchesFig8aShape) {
  // One loggable input per keystroke, visibles ≈ keystrokes (+status lines),
  // almost no unloggable ND: cand-log commit counts collapse.
  ftx::RunOutput cand = RunWorkload("nvi", 500, 3, "cand");
  ftx::RunOutput cand_log = RunWorkload("nvi", 500, 3, "cand-log");
  EXPECT_GT(cand.checkpoints, 450);
  EXPECT_LT(cand_log.checkpoints, 10);
}

TEST(Nvi, IntegrityCheckCleanOnHealthyRun) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 100;
  auto computation = ftx::BuildComputation(spec);
  computation->Run();
  EXPECT_TRUE(computation->app(0).CheckIntegrity(computation->runtime(0)).ok());
}

// --- magic ---

TEST(Magic, PaintsCells) {
  ftx::RunSpec spec;
  spec.workload = "magic";
  spec.scale = 30;
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_GT(ftx_apps::Magic::PaintedCells(computation->runtime(0)), 10000);
  EXPECT_TRUE(computation->app(0).CheckIntegrity(computation->runtime(0)).ok());
}

TEST(Magic, CommandsDirtyManyPages) {
  ftx::RunOutput out = RunWorkload("magic", 30, 3, "cpvs");
  const auto& stats = out.result.per_process[0];
  // The big dirty footprint behind magic's DC-disk overheads.
  EXPECT_GT(stats.pages_committed / std::max<int64_t>(stats.commits, 1), 100);
}

TEST(Magic, UnloggableNdKeepsCandLogHigh) {
  ftx::RunOutput cand = RunWorkload("magic", 40, 3, "cand");
  ftx::RunOutput cand_log = RunWorkload("magic", 40, 3, "cand-log");
  // Logging halves-ish CAND's commits but cannot remove the
  // timeofday/select events (Fig. 8b's shape).
  EXPECT_GT(cand_log.checkpoints, cand.checkpoints / 4);
  EXPECT_LT(cand_log.checkpoints, cand.checkpoints);
}

// --- postgres ---

TEST(Postgres, MatchesReferenceMapModel) {
  const int queries = 600;
  std::vector<ftx::Bytes> script = ftx_apps::Postgres::MakeScript(91, queries, 300);

  // Reference: a plain std::map executing the same script.
  std::map<int64_t, int64_t> reference;
  for (const ftx::Bytes& token : script) {
    struct Q {
      uint8_t op;
      int64_t key;
      int64_t value;
    } q{};
    std::memcpy(&q, token.data(), sizeof(Q) <= token.size() ? sizeof(Q) : token.size());
    switch (q.op) {
      case 'I':
        reference[q.key] = q.value;
        break;
      case 'U':
        if (reference.count(q.key)) {
          reference[q.key] += q.value;
        }
        break;
      case 'D':
        reference.erase(q.key);
        break;
      default:
        break;
    }
  }

  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = queries;
  spec.seed = 91;
  auto computation = ftx::BuildComputation(spec);
  computation->SetInputScript(0, script);  // exactly the reference's script
  computation->Run();

  auto& env = computation->runtime(0);
  EXPECT_EQ(ftx_apps::Postgres::TupleCount(env), static_cast<int64_t>(reference.size()));
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(ftx_apps::Postgres::Lookup(env, key), value) << "key " << key;
  }
  EXPECT_TRUE(computation->app(0).CheckIntegrity(env).ok());
}

class PostgresProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostgresProperty, IntegrityHoldsAcrossSeeds) {
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 300;
  spec.seed = GetParam();
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_TRUE(computation->app(0).CheckIntegrity(computation->runtime(0)).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostgresProperty, ::testing::Range<uint64_t>(1, 9));

// --- xpilot ---

TEST(Xpilot, RunsAtFullSpeedUnderDiscountChecking) {
  ftx::RunSpec spec;
  spec.workload = "xpilot";
  spec.scale = 150;
  spec.protocol = "cbndvs";
  ftx::OverheadRow row = ftx::MeasureOverhead(spec);
  EXPECT_NEAR(row.recoverable_fps, 15.0, 1.0);
}

TEST(Xpilot, CandDegradesOnDisk) {
  ftx::RunSpec spec;
  spec.workload = "xpilot";
  spec.scale = 100;
  spec.protocol = "cand";
  spec.store = ftx::StoreKind::kDisk;
  ftx::OverheadRow row = ftx::MeasureOverhead(spec);
  EXPECT_LT(row.recoverable_fps, 2.0);  // the paper's "0 fps"
}

TEST(Xpilot, ClientsRenderServerFrames) {
  ftx::RunSpec spec;
  spec.workload = "xpilot";
  spec.scale = 80;
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_EQ(ftx_apps::XpilotServer::FramesRun(computation->runtime(0)), 80);
  for (int c = 1; c <= 3; ++c) {
    EXPECT_GT(ftx_apps::XpilotClient::FramesRendered(computation->runtime(c)), 60);
  }
}

// --- treadmarks ---

TEST(TreadMarks, AllProcessesCompleteAllIterations) {
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 6;
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(ftx_apps::TreadMarks::IterationsDone(computation->runtime(p)), 6);
  }
}

TEST(TreadMarks, BodiesEvolve) {
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 4;
  auto c1 = ftx::BuildComputation(spec);
  c1->Run();
  uint32_t after4 = ftx_apps::TreadMarks::OwnBodiesChecksum(c1->runtime(0));

  spec.scale = 8;
  auto c2 = ftx::BuildComputation(spec);
  c2->Run();
  uint32_t after8 = ftx_apps::TreadMarks::OwnBodiesChecksum(c2->runtime(0));
  EXPECT_NE(after4, after8);  // the N-body system actually integrates
}

TEST(TreadMarks, TwoPcCollapsesCommitCount) {
  ftx::RunOutput cpvs = RunWorkload("treadmarks", 5, 3, "cpvs");
  ftx::RunOutput two_pc = RunWorkload("treadmarks", 5, 3, "cpv-2pc");
  // Fig. 8d's headline: visibles are rare, so coordinated commits win by
  // orders of magnitude.
  EXPECT_GT(cpvs.checkpoints, two_pc.checkpoints * 20);
}

TEST(TreadMarks, DsmTrafficDominatesEvents) {
  ftx::RunOutput out = RunWorkload("treadmarks", 5, 3, "cpvs");
  int64_t sends = 0;
  int64_t receives = 0;
  for (const auto& stats : out.result.per_process) {
    sends += stats.sends;
    receives += stats.receives;
  }
  EXPECT_GT(sends, 4 * 5 * 20);  // page requests + replies + barrier
  EXPECT_GT(receives, 4 * 5 * 20);
}

TEST(TreadMarks, ScalesToEightProcesses) {
  ftx_apps::TreadMarksOptions options;
  options.num_processes = 8;
  options.bodies = 512;
  options.iterations = 3;
  options.tree_work = ftx::Milliseconds(2);
  options.force_work = ftx::Milliseconds(4);

  ftx::ComputationOptions computation_options;
  computation_options.protocol = "cpvs";
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  for (int p = 0; p < 8; ++p) {
    apps.push_back(std::make_unique<ftx_apps::TreadMarks>(options));
  }
  ftx::Computation computation(computation_options, std::move(apps));
  computation.ScheduleStopFailure(5, ftx::TimePoint() + ftx::Milliseconds(60));
  auto result = computation.Run();
  ASSERT_TRUE(result.all_done);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(ftx_apps::TreadMarks::IterationsDone(computation.runtime(p)), 3) << p;
  }
}

TEST(Apps, ProtocolChoiceNeverChangesDeterministicOutput) {
  // The protocol decides WHEN to commit, never WHAT the application does:
  // visible streams must be identical across protocols (failure-free).
  ftx::RunOutput reference = RunWorkload("magic", 25, 9, "commit-all");
  for (const char* protocol : {"cand", "cbndvs-log", "hypervisor", "optimistic-log"}) {
    ftx::RunOutput out = RunWorkload("magic", 25, 9, protocol);
    ASSERT_EQ(out.outputs.size(), reference.outputs.size()) << protocol;
    for (size_t i = 0; i < out.outputs.size(); ++i) {
      EXPECT_EQ(out.outputs.events()[i].payload, reference.outputs.events()[i].payload)
          << protocol << " visible " << i;
    }
  }
}

// --- workload factory ---

TEST(Workloads, FactoryKnowsAllNames) {
  for (const std::string& name : ftx_apps::WorkloadNames()) {
    ftx_apps::WorkloadSetup setup = ftx_apps::MakeWorkload(name, 4, 1);
    EXPECT_FALSE(setup.apps.empty()) << name;
    EXPECT_EQ(setup.apps.size(), setup.scripts.size()) << name;
    EXPECT_GT(ftx_apps::DefaultScale(name, false), 0);
    EXPECT_GT(ftx_apps::DefaultScale(name, true), ftx_apps::DefaultScale(name, false) / 100);
  }
}

}  // namespace
