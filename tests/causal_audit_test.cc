// Tests for the live causal audit (src/obs/causal/): the vector-clock
// ledger ring, the online Save-work auditor pinned finding-for-finding
// against the offline oracle (ftx_sm::CheckSaveWork) on hand-built and
// randomized traces, the crash flight recorder, and the end-to-end
// guarantees — audited real runs report zero violations, a deliberately
// broken commit-too-little protocol is flagged with a dump naming the
// uncovered ND event, and the audit never perturbs a simulated quantity.

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/workloads.h"
#include "src/common/rng.h"
#include "src/core/computation.h"
#include "src/core/experiment.h"
#include "src/core/fault_study.h"
#include "src/obs/causal/audit.h"
#include "src/obs/causal/auditor.h"
#include "src/obs/causal/flight_recorder.h"
#include "src/obs/causal/ledger.h"
#include "src/statemachine/invariants.h"
#include "src/statemachine/trace.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::EventRef;
using ftx_sm::Trace;

// --- ledger ---

TEST(CausalLedger, RingEvictsOldestButTotalsKeepCounting) {
  ftx_causal::CausalLedger ledger(4);
  for (int i = 0; i < 10; ++i) {
    ftx_causal::LedgerEntry entry;
    entry.ref = EventRef{0, i};
    entry.kind = EventKind::kInternal;
    EXPECT_EQ(ledger.Append(std::move(entry)), i);
  }
  EXPECT_EQ(ledger.total_appended(), 10);
  EXPECT_EQ(ledger.size(), 4);
  std::vector<int64_t> seqs;
  ledger.ForEach([&seqs](const ftx_causal::LedgerEntry& e) { seqs.push_back(e.seq); });
  EXPECT_EQ(seqs, (std::vector<int64_t>{6, 7, 8, 9}));
  EXPECT_EQ(ledger.FindByRef(EventRef{0, 3}), nullptr);  // evicted
  ASSERT_NE(ledger.FindByRef(EventRef{0, 8}), nullptr);
}

TEST(CausalLedger, RefToStringNotation) {
  EXPECT_EQ(ftx_causal::RefToString(EventRef{2, 17}), "p2#17");
  EXPECT_EQ(ftx_causal::RefToString(EventRef{}), "-");
}

// --- flight recorder ---

TEST(FlightRecorder, RetainsUpToMaxIncidentsButCountsAll) {
  ftx_causal::CausalLedger ledger(8);
  ftx_causal::FlightRecorder flight(&ledger, /*max_incidents=*/2);
  ftx_causal::LedgerEntry entry;
  entry.ref = EventRef{0, 0};
  ledger.Append(std::move(entry));
  for (int i = 0; i < 5; ++i) {
    flight.RecordIncident("incident " + std::to_string(i), std::nullopt);
  }
  EXPECT_EQ(flight.total_incidents(), 5);
  ASSERT_EQ(flight.incidents().size(), 2u);
  EXPECT_EQ(flight.incidents()[0].reason, "incident 0");
  EXPECT_EQ(flight.incidents()[1].reason, "incident 1");
}

TEST(FlightRecorder, DumpMarksCausalChainOfFocus) {
  // p0's ND flows to p1 via a message; p1's visible is the focus. The ND,
  // the send, and the receive precede it causally and get '*'; p0's later
  // unrelated event does not.
  Trace trace(2);
  ftx_causal::CausalLedger ledger(16);
  trace.SetAppendObserver([&ledger](EventRef ref, const ftx_sm::TraceEvent& ev,
                                    const ftx_sm::VectorClock& clock) {
    ftx_causal::LedgerEntry entry;
    entry.ref = ref;
    entry.kind = ev.kind;
    entry.label = ev.label;
    entry.clock = clock;
    ledger.Append(std::move(entry));
  });
  trace.Append(0, EventKind::kTransientNd, -1, false, "flip");
  trace.Append(0, EventKind::kSend, 1);
  trace.Append(1, EventKind::kReceive, 1);
  EventRef focus = trace.Append(1, EventKind::kVisible, -1, false, "echo");
  trace.Append(0, EventKind::kInternal, -1, false, "later");

  ftx_causal::FlightRecorder flight(&ledger, 4);
  std::string dump = flight.Dump("test", focus);
  EXPECT_NE(dump.find("flight recorder: test"), std::string::npos);
  EXPECT_NE(dump.find("* [0]"), std::string::npos);  // the ND is on the chain
  EXPECT_NE(dump.find("p0#0"), std::string::npos);
  EXPECT_NE(dump.find("* [3]"), std::string::npos);  // the focus itself
  // p0's unrelated event [4] is rendered unmarked.
  EXPECT_NE(dump.find("  [4]"), std::string::npos);
  EXPECT_EQ(dump.find("* [4]"), std::string::npos);
}

// --- online auditor vs hand-built traces ---

// Runs the online auditor over a trace as it is built (via the same append
// observer the Computation installs) and returns it finalized.
std::unique_ptr<ftx_causal::SaveWorkAuditor> AuditLive(
    Trace& trace, const std::function<void(Trace&)>& build) {
  auto auditor = std::make_unique<ftx_causal::SaveWorkAuditor>(trace.num_processes());
  trace.SetAppendObserver([&auditor](EventRef ref, const ftx_sm::TraceEvent& ev,
                                     const ftx_sm::VectorClock& clock) {
    auditor->OnEvent(ref, ev, clock);
  });
  build(trace);
  auditor->Finalize();
  return auditor;
}

TEST(SaveWorkAuditor, UncoveredNdBeforeVisibleIsOneFinding) {
  Trace trace(1);
  auto auditor = AuditLive(trace, [](Trace& t) {
    t.Append(0, EventKind::kTransientNd, -1, false, "flip");
    t.Append(0, EventKind::kVisible, -1, false, "heads");
  });
  ASSERT_EQ(auditor->findings().size(), 1u);
  const ftx_causal::SaveWorkFinding& finding = auditor->findings()[0];
  EXPECT_TRUE(finding.visible_rule);
  EXPECT_EQ(finding.nd, (EventRef{0, 0}));
  EXPECT_EQ(finding.downstream, (EventRef{0, 1}));
  EXPECT_NE(finding.ToString().find("uncovered transient_nd p0#0"), std::string::npos);
  EXPECT_NE(finding.ToString().find("visible p0#1"), std::string::npos);
}

TEST(SaveWorkAuditor, CommitBetweenNdAndVisibleCovers) {
  Trace trace(1);
  auto auditor = AuditLive(trace, [](Trace& t) {
    t.Append(0, EventKind::kTransientNd);
    t.Append(0, EventKind::kCommit);
    t.Append(0, EventKind::kVisible);
  });
  EXPECT_EQ(auditor->violations(), 0);
  EXPECT_EQ(auditor->nd_unlogged(), 1);
  EXPECT_EQ(auditor->downstream_checked(), 2);
}

TEST(SaveWorkAuditor, OrphanRuleFlagsRemoteCommitOfUncommittedNd) {
  // Fig. 2: B's ND reaches A, A commits the dependence.
  Trace trace(2);
  auto auditor = AuditLive(trace, [](Trace& t) {
    t.Append(1, EventKind::kTransientNd);
    t.Append(1, EventKind::kSend, 1);
    t.Append(0, EventKind::kReceive, 1);
    t.Append(0, EventKind::kCommit);
  });
  EXPECT_GT(auditor->CountOrphanRule(), 0);
  bool found = false;
  for (const auto& finding : auditor->findings()) {
    found |= !finding.visible_rule && finding.nd == EventRef{1, 0};
  }
  EXPECT_TRUE(found);
}

TEST(SaveWorkAuditor, TwoPhaseCommitRoundIsAtomicallyCovered) {
  // The participant's commit is appended before the coordinator's same-group
  // commit — the live case that forces the pending-check machinery.
  Trace trace(2);
  auto auditor = AuditLive(trace, [](Trace& t) {
    t.Append(1, EventKind::kTransientNd);
    t.Append(1, EventKind::kSend, 1);
    t.Append(0, EventKind::kReceive, 1);
    t.Append(0, EventKind::kSend, 100);  // prepare
    t.Append(1, EventKind::kReceive, 100);
    t.Append(1, EventKind::kCommit, -1, false, "", /*atomic_group=*/1);
    t.Append(1, EventKind::kSend, 101);  // ack
    t.Append(0, EventKind::kReceive, 101);
    t.Append(0, EventKind::kCommit, -1, false, "", /*atomic_group=*/1);
    t.Append(0, EventKind::kVisible);
  });
  EXPECT_EQ(auditor->violations(), 0);
}

TEST(SaveWorkAuditor, PendingCheckBecomesFindingAtFinalize) {
  // B's uncovered ND is committed remotely by A; B has no commit at all, so
  // the check stays pending until Finalize resolves it as a violation.
  Trace trace(2);
  auto auditor = AuditLive(trace, [](Trace& t) {
    t.Append(1, EventKind::kTransientNd);
    t.Append(1, EventKind::kSend, 1);
    t.Append(0, EventKind::kReceive, 1);
    t.Append(0, EventKind::kCommit);
  });
  ASSERT_GE(auditor->findings().size(), 1u);
  bool at_finalize = false;
  for (const auto& finding : auditor->findings()) {
    at_finalize |= finding.resolved_at_finalize;
  }
  EXPECT_TRUE(at_finalize);
  EXPECT_GT(auditor->pending_resolved_at_finalize(), 0);
  EXPECT_TRUE(auditor->finalized());
}

// --- randomized equivalence with the offline oracle ---

using PairKey = std::tuple<int, int64_t, int, int64_t, bool>;

std::vector<PairKey> OfflinePairs(const Trace& trace) {
  std::vector<PairKey> out;
  for (const ftx_sm::SaveWorkViolation& v : ftx_sm::CheckSaveWork(trace).violations) {
    out.emplace_back(v.nd_event.process, v.nd_event.index, v.downstream.process,
                     v.downstream.index, v.visible_rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PairKey> OnlinePairs(const ftx_causal::SaveWorkAuditor& auditor) {
  std::vector<PairKey> out;
  for (const ftx_causal::SaveWorkFinding& f : auditor.findings()) {
    out.emplace_back(f.nd.process, f.nd.index, f.downstream.process, f.downstream.index,
                     f.visible_rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Random mixes of every event class the trace model has, including logged
// ND, cross-process messages, and (optionally) serialized 2PC rounds with
// increasing atomic groups — the exact shapes the runtime emits.
void BuildRandomTrace(Trace* trace, uint64_t seed, int num_processes, int steps,
                      bool with_2pc_rounds) {
  ftx::Rng rng(seed);
  struct Outstanding {
    int64_t id;
    int src;
  };
  std::vector<Outstanding> outstanding;
  int64_t next_msg = 1;
  int64_t next_group = 1;
  for (int i = 0; i < steps; ++i) {
    const int p = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_processes)));
    const int64_t roll = rng.NextInRange(0, 99);
    if (with_2pc_rounds && num_processes >= 2 && roll < 6) {
      // One complete coordinated round: prepare, participant commits, acks,
      // coordinator commit, visible. Rounds never interleave.
      const int64_t group = next_group++;
      std::vector<int64_t> acks;
      for (int q = 0; q < num_processes; ++q) {
        if (q == p) {
          continue;
        }
        const int64_t prepare = next_msg++;
        trace->Append(p, EventKind::kSend, prepare);
        trace->Append(q, EventKind::kReceive, prepare);
        trace->Append(q, EventKind::kCommit, -1, false, "", group);
        const int64_t ack = next_msg++;
        trace->Append(q, EventKind::kSend, ack);
        acks.push_back(ack);
      }
      for (int64_t ack : acks) {
        trace->Append(p, EventKind::kReceive, ack);
      }
      trace->Append(p, EventKind::kCommit, -1, false, "", group);
      trace->Append(p, EventKind::kVisible);
    } else if (roll < 20) {
      trace->Append(p, EventKind::kTransientNd, -1, rng.NextBernoulli(0.3));
    } else if (roll < 28) {
      trace->Append(p, EventKind::kFixedNd, -1, rng.NextBernoulli(0.3));
    } else if (roll < 40) {
      trace->Append(p, EventKind::kCommit);
    } else if (roll < 52) {
      trace->Append(p, EventKind::kVisible);
    } else if (roll < 68 && num_processes >= 2) {
      trace->Append(p, EventKind::kSend, next_msg);
      outstanding.push_back({next_msg, p});
      ++next_msg;
    } else if (roll < 84 && !outstanding.empty()) {
      const size_t pick = rng.NextBounded(outstanding.size());
      const Outstanding msg = outstanding[pick];
      outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(pick));
      int dst = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_processes)));
      if (dst == msg.src) {
        dst = (dst + 1) % num_processes;
      }
      trace->Append(dst, EventKind::kReceive, msg.id, rng.NextBernoulli(0.3));
    } else {
      trace->Append(p, EventKind::kInternal);
    }
  }
}

TEST(SaveWorkAuditor, MatchesOfflineOracleOnRandomTraces) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    for (int num_processes : {1, 2, 4}) {
      Trace trace(num_processes);
      auto auditor = AuditLive(trace, [&](Trace& t) {
        BuildRandomTrace(&t, seed * 1000 + static_cast<uint64_t>(num_processes), num_processes,
                         120, /*with_2pc_rounds=*/false);
      });
      EXPECT_EQ(OnlinePairs(*auditor), OfflinePairs(trace))
          << "seed=" << seed << " processes=" << num_processes;
    }
  }
}

TEST(SaveWorkAuditor, MatchesOfflineOracleOnRandomTracesWith2pcRounds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Trace trace(3);
    auto auditor = AuditLive(trace, [&](Trace& t) {
      BuildRandomTrace(&t, seed * 7919, 3, 120, /*with_2pc_rounds=*/true);
    });
    EXPECT_EQ(OnlinePairs(*auditor), OfflinePairs(trace)) << "seed=" << seed;
  }
}

// --- end-to-end: audited real runs ---

TEST(CausalAuditIntegration, AuditedRunsReportZeroViolations) {
  // The acceptance criterion's fast slice (the full protocol x workload
  // matrix runs in the audited CTest bench entries): every measured
  // single-process protocol plus the coordinated ones on treadmarks.
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx::RunSpec spec;
    spec.workload = "nvi";
    spec.protocol = protocol;
    spec.scale = 40;
    spec.audit = true;
    ftx::RunOutput output = ftx::RunExperiment(spec);
    ASSERT_TRUE(output.result.all_done) << protocol;
    ASSERT_TRUE(output.audited) << protocol;
    EXPECT_EQ(output.audit_violations, 0) << protocol;
    ASSERT_NE(output.audit_report.Find("events"), nullptr) << protocol;
    EXPECT_GT(output.audit_report.Find("events")->integer(), 0) << protocol;
    EXPECT_TRUE(output.audit_report.Find("finalized")->boolean()) << protocol;
  }
  for (const char* protocol : {"cpv-2pc", "cbndv-2pc"}) {
    ftx::RunSpec spec;
    spec.workload = "treadmarks";
    spec.protocol = protocol;
    spec.scale = 3;
    spec.audit = true;
    ftx::RunOutput output = ftx::RunExperiment(spec);
    ASSERT_TRUE(output.result.all_done) << protocol;
    ASSERT_TRUE(output.audited) << protocol;
    EXPECT_EQ(output.audit_violations, 0) << protocol;
  }
}

TEST(CausalAuditIntegration, AuditMatchesOfflineCheckerOnRealTraces) {
  // The online verdict on a real audited run equals the offline checker run
  // over the very same trace, finding-for-finding (here: zero findings).
  ftx::RunSpec spec;
  spec.workload = "magic";
  spec.protocol = "cbndvs";
  spec.scale = 25;
  spec.audit = true;
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  ASSERT_NE(computation->audit(), nullptr);
  EXPECT_EQ(OnlinePairs(computation->audit()->auditor()),
            OfflinePairs(computation->trace()));
}

TEST(CausalAuditIntegration, AuditNeverPerturbsSimulatedQuantities) {
  // Same spec, same failure schedule; only the audit toggle differs. Every
  // simulated quantity must be byte-identical (the audit is an observer).
  auto run = [](bool audit) {
    ftx::RunSpec spec;
    spec.workload = "postgres";
    spec.protocol = "cpvs";
    spec.scale = 120;
    spec.seed = 11;
    spec.audit = audit;
    auto computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(15),
                                     ftx::Milliseconds(1));
    auto result = computation->Run();
    return std::make_tuple(result.all_done, result.end_time.nanos(), result.total_commits,
                           result.total_events, result.total_rollbacks,
                           computation->metrics().ToJsonString());
  };
  auto off = run(false);
  auto on = run(true);
  EXPECT_TRUE(std::get<0>(on));
  EXPECT_EQ(off, on);
}

// A protocol that commits too little: it never commits and never logs, so
// every unlogged ND event preceding a visible is a Save-work violation the
// audit must flag live.
class CommitTooLittleProtocol : public ftx_proto::Protocol {
 public:
  std::string_view name() const override { return "commit-too-little"; }
  ftx_proto::SpacePoint space_point() const override { return {}; }
  ftx_proto::CommitDecision Decide(ftx_proto::AppEvent event) override {
    if (ftx_proto::IsNdEvent(event)) {
      nd_since_commit_ = true;
    }
    return {};
  }
  void OnCommitted() override { nd_since_commit_ = false; }
  bool HasUncommittedNd() const override { return nd_since_commit_; }
  std::unique_ptr<ftx_proto::Protocol> Clone() const override {
    return std::make_unique<CommitTooLittleProtocol>();
  }

 private:
  bool nd_since_commit_ = false;
};

std::unique_ptr<ftx::Computation> BuildBrokenProtocolRun(uint64_t seed) {
  ftx_apps::WorkloadSetup setup =
      ftx_apps::MakeWorkload("nvi", /*scale=*/30, seed, /*interactive=*/false);
  ftx::ComputationOptions options;
  options.seed = seed;
  options.audit = true;
  options.protocol_factory = [] { return std::make_unique<CommitTooLittleProtocol>(); };
  auto computation =
      std::make_unique<ftx::Computation>(std::move(options), std::move(setup.apps));
  computation->SetInputScript(0, setup.scripts[0]);
  return computation;
}

TEST(CausalAuditIntegration, BrokenProtocolIsFlaggedWithFlightDump) {
  auto computation = BuildBrokenProtocolRun(/*seed=*/7);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  ftx_causal::CausalAudit* audit = computation->audit();
  ASSERT_NE(audit, nullptr);
  ASSERT_GT(audit->violations(), 0);

  // The offline oracle agrees with every online finding.
  EXPECT_EQ(OnlinePairs(audit->auditor()), OfflinePairs(computation->trace()));

  // Each finding became a flight-recorder incident whose reason names the
  // uncovered ND event, and whose dump marks it on the causal chain.
  ASSERT_FALSE(audit->flight().incidents().empty());
  const ftx_causal::SaveWorkFinding& first = audit->auditor().findings()[0];
  const ftx_causal::FlightRecorder::Incident& incident = audit->flight().incidents()[0];
  EXPECT_NE(incident.reason.find("save-work violation"), std::string::npos);
  EXPECT_NE(incident.reason.find(ftx_causal::RefToString(first.nd)), std::string::npos);
  EXPECT_NE(incident.dump.find("* "), std::string::npos);
  EXPECT_NE(incident.dump.find(ftx_causal::RefToString(first.nd)), std::string::npos);

  // The structured report carries the findings for --json consumers.
  ftx_obs::Json report = audit->ToJson();
  EXPECT_GT(report.Find("violations")->integer(), 0);
  ASSERT_GT(report.Find("findings")->size(), 0u);
  EXPECT_NE(report.Find("findings")->at(0).Find("detail")->str().find("uncovered"),
            std::string::npos);
}

TEST(CausalAuditIntegration, FlightDumpsAreDeterministic) {
  auto a = BuildBrokenProtocolRun(/*seed=*/7);
  auto b = BuildBrokenProtocolRun(/*seed=*/7);
  a->Run();
  b->Run();
  ASSERT_NE(a->audit(), nullptr);
  ASSERT_NE(b->audit(), nullptr);
  EXPECT_EQ(a->audit()->ToJson().Dump(2), b->audit()->ToJson().Dump(2));
  ASSERT_FALSE(a->audit()->flight().incidents().empty());
  EXPECT_EQ(a->audit()->flight().incidents()[0].dump,
            b->audit()->flight().incidents()[0].dump);
}

TEST(CausalAuditIntegration, CrashingFaultStudyRunsStayViolationFree) {
  // Crashes and recoveries do not fool the online check: under CPVS the
  // commit-before-visible covers every earlier in-process position, rolled
  // back or not, so audited crashing runs report zero violations while the
  // crash itself lands as a flight-recorder incident.
  int crashed_and_audited = 0;
  for (uint64_t seed = 1; seed <= 20 && crashed_and_audited < 3; ++seed) {
    ftx::FaultRunResult result = ftx::RunApplicationFault(
        "postgres", ftx_fault::FaultType::kHeapBitFlip, seed, "cpvs", ftx::StoreKind::kRio,
        /*audit=*/true);
    ASSERT_TRUE(result.audited);
    EXPECT_EQ(result.audit_violations, 0) << "seed=" << seed;
    if (!result.crashed) {
      continue;
    }
    ++crashed_and_audited;
    EXPECT_GE(result.audit_incidents, 1) << "seed=" << seed;
    EXPECT_NE(result.audit_first_dump.find("flight recorder"), std::string::npos);
    EXPECT_NE(result.audit_first_dump.find("crash"), std::string::npos);
  }
  EXPECT_EQ(crashed_and_audited, 3) << "heap bit flips should crash postgres regularly";
}

TEST(CausalAuditIntegration, BaselineModeIgnoresAuditToggle) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 20;
  spec.mode = ftx_dc::RuntimeMode::kBaseline;
  spec.audit = true;
  auto computation = ftx::BuildComputation(spec);
  EXPECT_EQ(computation->audit(), nullptr);  // baseline runs have no trace
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
}

TEST(CausalAuditIntegration, CommitCostAttributionPartitionsTheCommit) {
  // Every audited commit carries staged costs whose components sum to the
  // interval the commit occupies on the simulated timeline.
  for (ftx::StoreKind store : {ftx::StoreKind::kRio, ftx::StoreKind::kDisk}) {
    ftx::RunSpec spec;
    spec.workload = "magic";
    spec.protocol = "cpvs";
    spec.scale = 25;
    spec.store = store;
    spec.audit = true;
    auto computation = ftx::BuildComputation(spec);
    auto result = computation->Run();
    ASSERT_TRUE(result.all_done);
    ASSERT_NE(computation->audit(), nullptr);
    int64_t commits_with_costs = 0;
    computation->audit()->ledger().ForEach([&](const ftx_causal::LedgerEntry& entry) {
      if (entry.kind != ftx_sm::EventKind::kCommit || !entry.has_costs) {
        return;
      }
      ++commits_with_costs;
      const ftx_causal::CommitCosts& costs = entry.costs;
      EXPECT_EQ(costs.TotalNs(), costs.end_ns - costs.begin_ns);
      EXPECT_GT(costs.fixed_ns, 0);
      EXPECT_GE(costs.before_image_ns, 0);
      EXPECT_GE(costs.reprotect_ns, 0);
      EXPECT_GE(costs.persist_ns, 0);
      EXPECT_GE(costs.pages, 0);
      if (store == ftx::StoreKind::kDisk) {
        EXPECT_GT(costs.payload_bytes, 0);
      }
    });
    EXPECT_GT(commits_with_costs, 0);
  }
}

}  // namespace
