// Unit tests for src/common: Status/Result, Rng, CRC32, sim-time, bytes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace {

// --- Status / Result ---

TEST(Status, DefaultIsOk) {
  ftx::Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  ftx::Status status = ftx::DataLossError("guard smashed");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ftx::StatusCode::kDataLoss);
  EXPECT_EQ(status.message(), "guard smashed");
  EXPECT_EQ(status.ToString(), "data_loss: guard smashed");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  std::set<ftx::StatusCode> codes;
  codes.insert(ftx::InvalidArgumentError("x").code());
  codes.insert(ftx::NotFoundError("x").code());
  codes.insert(ftx::FailedPreconditionError("x").code());
  codes.insert(ftx::OutOfRangeError("x").code());
  codes.insert(ftx::ResourceExhaustedError("x").code());
  codes.insert(ftx::AbortedError("x").code());
  codes.insert(ftx::DataLossError("x").code());
  codes.insert(ftx::UnavailableError("x").code());
  codes.insert(ftx::InternalError("x").code());
  EXPECT_EQ(codes.size(), 9u);
}

TEST(Result, HoldsValue) {
  ftx::Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(Result, HoldsError) {
  ftx::Result<int> result(ftx::NotFoundError("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ftx::StatusCode::kNotFound);
}

// --- Rng ---

TEST(Rng, DeterministicFromSeed) {
  ftx::Rng a(123);
  ftx::Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  ftx::Rng a(1);
  ftx::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  ftx::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  ftx::Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, InRangeInclusive) {
  ftx::Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  ftx::Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  ftx::Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) {
      ++hits;
    }
  }
  double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  ftx::Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  ftx::Rng rng(15);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  ftx::Rng parent(21);
  ftx::Rng child_a = parent.Fork(1);
  ftx::Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.NextU64() == child_b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePermutes) {
  ftx::Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> sorted_v(v.begin(), v.end());
  std::multiset<int> sorted_orig(original.begin(), original.end());
  EXPECT_EQ(sorted_v, sorted_orig);
}

// --- Crc32 ---

TEST(Crc32, KnownVector) {
  // Standard CRC-32 of "123456789" is 0xcbf43926.
  const char* data = "123456789";
  EXPECT_EQ(ftx::Crc32(data, 9), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(ftx::Crc32("", 0), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  size_t n = 44;
  uint32_t one_shot = ftx::Crc32(data, n);
  for (size_t split = 0; split <= n; split += 7) {
    uint32_t crc = ftx::Crc32Extend(0, data, split);
    crc = ftx::Crc32Extend(crc, data + split, n - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlip) {
  ftx::Bytes data(256, 0xab);
  uint32_t before = ftx::Crc32(data.data(), data.size());
  data[100] ^= 0x04;
  EXPECT_NE(ftx::Crc32(data.data(), data.size()), before);
}

// --- sim_time ---

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(ftx::Microseconds(3).nanos(), 3000);
  EXPECT_EQ(ftx::Milliseconds(2).nanos(), 2000000);
  EXPECT_EQ(ftx::Seconds(1.5).nanos(), 1500000000);
}

TEST(SimTime, Arithmetic) {
  ftx::Duration d = ftx::Milliseconds(5) + ftx::Microseconds(250);
  EXPECT_EQ(d.micros(), 5250);
  EXPECT_EQ((d * 2).micros(), 10500);
  EXPECT_EQ((d / 5).micros(), 1050);
  ftx::TimePoint t = ftx::TimePoint() + d;
  EXPECT_EQ((t - ftx::TimePoint()).nanos(), d.nanos());
}

TEST(SimTime, Ordering) {
  EXPECT_LT(ftx::Microseconds(1), ftx::Milliseconds(1));
  EXPECT_GT(ftx::TimePoint(100), ftx::TimePoint(99));
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(ftx::Nanoseconds(17).ToString(), "17ns");
  EXPECT_EQ(ftx::Milliseconds(5).ToString(), "5.000ms");
  EXPECT_EQ(ftx::Seconds(2.0).ToString(), "2.000s");
}

// --- bytes ---

TEST(Bytes, ValueRoundTrip) {
  ftx::Bytes buffer;
  ftx::AppendValue(&buffer, int64_t{-77});
  ftx::AppendValue(&buffer, uint32_t{0xdeadbeef});
  size_t offset = 0;
  int64_t a = 0;
  uint32_t b = 0;
  ASSERT_TRUE(ftx::ReadValue(buffer, &offset, &a));
  ASSERT_TRUE(ftx::ReadValue(buffer, &offset, &b));
  EXPECT_EQ(a, -77);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(offset, buffer.size());
}

TEST(Bytes, ReadPastEndFails) {
  ftx::Bytes buffer;
  ftx::AppendValue(&buffer, uint16_t{1});
  size_t offset = 0;
  int64_t value = 0;
  EXPECT_FALSE(ftx::ReadValue(buffer, &offset, &value));
  EXPECT_EQ(offset, 0u);  // offset unchanged on failure
}

TEST(Bytes, StringRoundTrip) {
  ftx::Bytes buffer;
  ftx::AppendString(&buffer, "hello");
  ftx::AppendString(&buffer, "");
  size_t offset = 0;
  std::string a;
  std::string b;
  ASSERT_TRUE(ftx::ReadString(buffer, &offset, &a));
  ASSERT_TRUE(ftx::ReadString(buffer, &offset, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(Bytes, HexDumpTruncates) {
  ftx::Bytes data(100, 0xff);
  std::string dump = ftx::HexDump(data, 4);
  EXPECT_EQ(dump, "ff ff ff ff ...");
}

}  // namespace
