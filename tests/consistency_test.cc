// Tests for the consistent-recovery checker (§2.3's equivalence definition)
// and the orphan detector (Fig. 2).

#include <gtest/gtest.h>

#include "src/recovery/consistency.h"
#include "src/recovery/orphan.h"
#include "src/statemachine/trace.h"

namespace {

using ftx_rec::OutputRecorder;

ftx::Bytes B(const char* s) {
  return ftx::Bytes(s, s + std::char_traits<char>::length(s));
}

TEST(Consistency, IdenticalStreamsAreConsistent) {
  OutputRecorder reference;
  OutputRecorder recovered;
  for (const char* s : {"a", "b", "c"}) {
    reference.Record(0, ftx::TimePoint(), B(s));
    recovered.Record(0, ftx::TimePoint(), B(s));
  }
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 1);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.duplicates_tolerated, 0);
}

TEST(Consistency, DuplicatesOfEarlierOutputAreTolerated) {
  // The paper's equivalence: V may differ from V' only by repeats of
  // earlier events of V — exactly what reexecution after rollback produces.
  OutputRecorder reference;
  OutputRecorder recovered;
  for (const char* s : {"a", "b", "c", "d"}) {
    reference.Record(0, ftx::TimePoint(), B(s));
  }
  recovered.Record(0, ftx::TimePoint(), B("a"));
  recovered.Record(0, ftx::TimePoint(), B("b"));
  recovered.Record(0, ftx::TimePoint(), B("b"));  // repeat after recovery
  recovered.Record(0, ftx::TimePoint(), B("c"));
  recovered.Record(0, ftx::TimePoint(), B("d"));
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 1);
  EXPECT_TRUE(result.consistent) << result.diagnostic;
  EXPECT_EQ(result.duplicates_tolerated, 1);
}

TEST(Consistency, DivergentContentIsInconsistent) {
  OutputRecorder reference;
  OutputRecorder recovered;
  reference.Record(0, ftx::TimePoint(), B("heads"));
  recovered.Record(0, ftx::TimePoint(), B("tails"));
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 1);
  EXPECT_FALSE(result.consistent);
  EXPECT_NE(result.diagnostic.find("diverges"), std::string::npos);
}

TEST(Consistency, TheCoinFlipScenario) {
  // Fig. 1: output "heads" before the failure, "tails" after recovery. No
  // failure-free run outputs both.
  OutputRecorder reference;
  reference.Record(0, ftx::TimePoint(), B("heads"));
  OutputRecorder recovered;
  recovered.Record(0, ftx::TimePoint(), B("heads"));
  recovered.Record(0, ftx::TimePoint(), B("tails"));
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 1);
  EXPECT_FALSE(result.consistent);
}

TEST(Consistency, IncompleteOutputViolatesNoOrphanConstraint) {
  OutputRecorder reference;
  for (const char* s : {"a", "b", "c"}) {
    reference.Record(0, ftx::TimePoint(), B(s));
  }
  OutputRecorder recovered;
  recovered.Record(0, ftx::TimePoint(), B("a"));

  auto strict = ftx_rec::CheckConsistentRecovery(reference, recovered, 1,
                                                 /*require_complete=*/true);
  EXPECT_FALSE(strict.consistent);
  EXPECT_NE(strict.diagnostic.find("incomplete"), std::string::npos);

  auto prefix_ok = ftx_rec::CheckConsistentRecovery(reference, recovered, 1,
                                                    /*require_complete=*/false);
  EXPECT_TRUE(prefix_ok.consistent);
}

TEST(Consistency, StreamsCheckedPerProcess) {
  OutputRecorder reference;
  reference.Record(0, ftx::TimePoint(), B("p0"));
  reference.Record(1, ftx::TimePoint(), B("p1"));
  OutputRecorder recovered;
  recovered.Record(1, ftx::TimePoint(), B("p1"));  // interleaving differs...
  recovered.Record(0, ftx::TimePoint(), B("p0"));
  // ...but per-process streams match: consistent.
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 2);
  EXPECT_TRUE(result.consistent) << result.diagnostic;
}

TEST(Consistency, WrongProcessOutputIsInconsistent) {
  OutputRecorder reference;
  reference.Record(0, ftx::TimePoint(), B("x"));
  OutputRecorder recovered;
  recovered.Record(1, ftx::TimePoint(), B("x"));
  auto result = ftx_rec::CheckConsistentRecovery(reference, recovered, 2);
  EXPECT_FALSE(result.consistent);
}

// --- orphan detection ---

TEST(Orphan, Fig2ScenarioDetected) {
  // B (process 1) executes ND, sends to A (process 0); A commits; B fails
  // having never committed: A is an orphan.
  ftx_sm::Trace trace(2);
  trace.Append(1, ftx_sm::EventKind::kTransientNd);
  trace.Append(1, ftx_sm::EventKind::kSend, 1);
  trace.Append(0, ftx_sm::EventKind::kReceive, 1);
  trace.Append(0, ftx_sm::EventKind::kCommit);

  auto check = ftx_rec::DetectOrphan(trace, /*survivor=*/0, /*failed=*/1,
                                     /*failed_rollback_index=*/-1);
  EXPECT_TRUE(check.orphaned);
  ASSERT_TRUE(check.lost_nd.has_value());
  EXPECT_EQ(check.lost_nd->process, 1);
  EXPECT_EQ(check.lost_nd->index, 0);
}

TEST(Orphan, SenderCommitPreventsOrphan) {
  ftx_sm::Trace trace(2);
  trace.Append(1, ftx_sm::EventKind::kTransientNd);
  trace.Append(1, ftx_sm::EventKind::kCommit);  // B preserves its ND
  trace.Append(1, ftx_sm::EventKind::kSend, 1);
  trace.Append(0, ftx_sm::EventKind::kReceive, 1);
  trace.Append(0, ftx_sm::EventKind::kCommit);

  // B rolls back to its commit (index 1): the ND at index 0 is preserved.
  auto check = ftx_rec::DetectOrphan(trace, 0, 1, /*failed_rollback_index=*/1);
  EXPECT_FALSE(check.orphaned);
}

TEST(Orphan, NoOrphanWithoutSurvivorCommit) {
  ftx_sm::Trace trace(2);
  trace.Append(1, ftx_sm::EventKind::kTransientNd);
  trace.Append(1, ftx_sm::EventKind::kSend, 1);
  trace.Append(0, ftx_sm::EventKind::kReceive, 1);
  // A never commits: it can be rolled back along with B — no orphan.
  auto check = ftx_rec::DetectOrphan(trace, 0, 1, -1);
  EXPECT_FALSE(check.orphaned);
}

TEST(Orphan, LoggedNdIsRegenerableNotOrphaning) {
  ftx_sm::Trace trace(2);
  trace.Append(1, ftx_sm::EventKind::kTransientNd, -1, /*logged=*/true);
  trace.Append(1, ftx_sm::EventKind::kSend, 1);
  trace.Append(0, ftx_sm::EventKind::kReceive, 1);
  trace.Append(0, ftx_sm::EventKind::kCommit);
  auto check = ftx_rec::DetectOrphan(trace, 0, 1, -1);
  EXPECT_FALSE(check.orphaned);
}

TEST(Orphan, SurvivorCommitBeforeReceiveIsSafe) {
  ftx_sm::Trace trace(2);
  trace.Append(0, ftx_sm::EventKind::kCommit);  // commit precedes the dependence
  trace.Append(1, ftx_sm::EventKind::kTransientNd);
  trace.Append(1, ftx_sm::EventKind::kSend, 1);
  trace.Append(0, ftx_sm::EventKind::kReceive, 1);
  auto check = ftx_rec::DetectOrphan(trace, 0, 1, -1);
  EXPECT_FALSE(check.orphaned);
}

}  // namespace
