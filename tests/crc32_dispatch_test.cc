// Hardware-vs-portable CRC32 dispatch equality.
//
// The PCLMUL kernel must be byte-identical to the slice-by-8 reference on
// every input — the log format, goldens, and torture checksums are all
// committed to the IEEE digests, so a single divergent bit anywhere in the
// fold algebra would corrupt durability checks silently. These tests fuzz
// the two paths against each other across lengths, alignments, and seeds,
// exercise the incremental-extend contract, pin the Segment::Checksum range
// overload under both implementations, and verify the forced-portable
// (CPUID-fallback) selector.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/vista/segment.h"

namespace ftx {
namespace {

// Restores the auto-probed dispatch no matter how a test exits, so a failed
// forced-portable test can't leak a slow path into the rest of the suite.
class ScopedCrc32Impl {
 public:
  explicit ScopedCrc32Impl(Crc32Impl impl) { SetCrc32Impl(impl); }
  ~ScopedCrc32Impl() { SetCrc32Impl(Crc32Impl::kAuto); }
};

std::vector<uint8_t> RandomBuffer(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> buf(size);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return buf;
}

TEST(Crc32DispatchTest, HardwareMatchesPortableAcrossLengthsAndAlignments) {
  if (!Crc32HardwareAvailable()) {
    GTEST_SKIP() << "no PCLMUL on this host";
  }
  ScopedCrc32Impl forced(Crc32Impl::kHardware);
  ASSERT_EQ(ActiveCrc32Impl(), Crc32Impl::kHardware);

  // +64 slack so every offset still leaves `len` addressable bytes.
  const std::vector<uint8_t> buf = RandomBuffer(1 << 18, 0x5eed);
  const size_t lengths[] = {0,  1,   7,   8,    15,   16,   63,    64,    65,    80,
                            96, 127, 128, 1000, 4096, 4097, 65536, 99999, 262080};
  const size_t offsets[] = {0, 1, 3, 7, 8, 15, 63};
  for (size_t len : lengths) {
    for (size_t off : offsets) {
      if (off + len > buf.size()) {
        continue;
      }
      const uint8_t* p = buf.data() + off;
      EXPECT_EQ(Crc32Extend(0, p, len), Crc32PortableExtend(0, p, len))
          << "len=" << len << " off=" << off;
      EXPECT_EQ(Crc32Extend(0xdeadbeefu, p, len), Crc32PortableExtend(0xdeadbeefu, p, len))
          << "seeded len=" << len << " off=" << off;
    }
  }
}

TEST(Crc32DispatchTest, RandomizedSplitsPreserveIncrementalContract) {
  if (!Crc32HardwareAvailable()) {
    GTEST_SKIP() << "no PCLMUL on this host";
  }
  ScopedCrc32Impl forced(Crc32Impl::kHardware);

  Rng rng(0xc4c32);
  const std::vector<uint8_t> buf = RandomBuffer(1 << 16, 0xfeed);
  for (int round = 0; round < 200; ++round) {
    const size_t len = static_cast<size_t>(rng.NextU64() % buf.size());
    const size_t off = static_cast<size_t>(rng.NextU64() % (buf.size() - len + 1));
    const size_t split = len == 0 ? 0 : static_cast<size_t>(rng.NextU64() % (len + 1));
    const uint8_t* p = buf.data() + off;
    const uint32_t whole = Crc32PortableExtend(0, p, len);
    // Hardware one-shot and hardware two-part extend both match the
    // portable one-shot.
    EXPECT_EQ(Crc32Extend(0, p, len), whole) << "round " << round;
    const uint32_t part = Crc32Extend(0, p, split);
    EXPECT_EQ(Crc32Extend(part, p + split, len - split), whole)
        << "round " << round << " split=" << split;
  }
}

TEST(Crc32DispatchTest, SegmentChecksumRangeOverloadIsImplementationInvariant) {
  ftx_vista::Segment segment(64 * 1024);
  Rng rng(0x5e9);
  for (int i = 0; i < 512; ++i) {
    const int64_t offset = static_cast<int64_t>(rng.NextU64() % (segment.size() - 8));
    segment.WriteValue<uint64_t>(offset, rng.NextU64());
  }
  segment.Commit();

  struct Range {
    int64_t offset;
    size_t size;
  };
  const Range ranges[] = {{0, 64 * 1024}, {0, 1}, {4095, 2}, {100, 9000}, {60000, 4000}, {512, 0}};
  for (const Range& r : ranges) {
    SetCrc32Impl(Crc32Impl::kPortable);
    const uint32_t portable = segment.Checksum(r.offset, r.size);
    SetCrc32Impl(Crc32Impl::kAuto);
    const uint32_t active = segment.Checksum(r.offset, r.size);
    EXPECT_EQ(portable, active) << "offset=" << r.offset << " size=" << r.size;
  }
  SetCrc32Impl(Crc32Impl::kAuto);
}

TEST(Crc32DispatchTest, ForcedPortableSelectorTakesEffect) {
  // The CPUID-fallback path: regardless of host support, kPortable must win
  // and still produce the canonical digests.
  ScopedCrc32Impl forced(Crc32Impl::kPortable);
  ASSERT_EQ(ActiveCrc32Impl(), Crc32Impl::kPortable);
  const char msg[] = "123456789";
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32(msg, 9), 0xcbf43926u);
  const std::vector<uint8_t> buf = RandomBuffer(4096, 1);
  EXPECT_EQ(Crc32(buf.data(), buf.size()), Crc32PortableExtend(0, buf.data(), buf.size()));
}

TEST(Crc32DispatchTest, HardwareForcingFallsBackWhenUnsupported) {
  ScopedCrc32Impl forced(Crc32Impl::kHardware);
  if (Crc32HardwareAvailable()) {
    EXPECT_EQ(ActiveCrc32Impl(), Crc32Impl::kHardware);
  } else {
    // Forcing hardware on a host without PCLMUL must degrade, not crash.
    EXPECT_EQ(ActiveCrc32Impl(), Crc32Impl::kPortable);
    const char msg[] = "123456789";
    EXPECT_EQ(Crc32(msg, 9), 0xcbf43926u);
  }
}

}  // namespace
}  // namespace ftx
