// Cross-validation of the library's two Lose-work formalisms.
//
// The paper states the Lose-work Theorem twice: operationally (no commit
// between the dangerous path's start and the crash, checked on executed
// traces by CheckLoseWorkFull) and graph-theoretically (no commit event on a
// path colored by the dangerous-paths algorithm). For an executed path the
// two must agree. This test builds, for random event sequences ending in a
// crash, BOTH representations — the trace, and a state-machine graph of the
// path where every ND event also has an untaken sibling branch to a safe
// terminal — and checks the verdicts coincide for every possible commit
// position:
//
//  * a transient ND event's safe sibling is an escape hatch (rule 3 does
//    not fire for transient siblings), so coloring stops there — matching
//    the trace walk, which ends the dangerous window at the last transient
//    ND before activation;
//  * a fixed ND event's crash-ward branch is colored, and rule 3 propagates
//    the coloring across it — matching the trace walk treating fixed ND as
//    unable to end the window.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/statemachine/dangerous_paths.h"
#include "src/statemachine/invariants.h"

namespace {

using ftx_sm::EventKind;

struct PathStep {
  EventKind kind = EventKind::kInternal;
  bool logged = false;
};

// Builds the graph of a straight-line execution whose last event is a
// crash; ND steps get an untaken sibling edge to a fresh safe terminal.
// Returns the edge ids of the taken path, in order.
std::vector<ftx_sm::EdgeId> BuildPathGraph(const std::vector<PathStep>& steps,
                                           ftx_sm::StateMachineGraph* graph) {
  std::vector<ftx_sm::EdgeId> taken;
  ftx_sm::StateId current = graph->AddState();
  for (const PathStep& step : steps) {
    ftx_sm::StateId next = graph->AddState();
    // A logged ND event is deterministic on replay: it cannot take the
    // sibling branch, so the graph models it as a plain deterministic edge.
    EventKind kind = step.logged ? EventKind::kInternal : step.kind;
    taken.push_back(graph->AddEdge(current, next, kind));
    if (!step.logged &&
        (step.kind == EventKind::kTransientNd || step.kind == EventKind::kFixedNd)) {
      ftx_sm::StateId safe = graph->AddState();
      graph->AddEdge(current, safe, step.kind, "untaken");
    }
    current = next;
  }
  // The crash.
  ftx_sm::StateId dead = graph->AddState();
  taken.push_back(graph->AddEdge(current, dead, EventKind::kCrash));
  return taken;
}

class LoseWorkCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoseWorkCrossCheck, GraphColoringAgreesWithTraceWalk) {
  ftx::Rng rng(GetParam());
  const int length = 4 + static_cast<int>(rng.NextBounded(12));

  // Random path: internal / transient / fixed events, some logged.
  std::vector<PathStep> steps;
  for (int i = 0; i < length; ++i) {
    PathStep step;
    double roll = rng.NextDouble();
    if (roll < 0.4) {
      step.kind = EventKind::kInternal;
    } else if (roll < 0.7) {
      step.kind = EventKind::kTransientNd;
    } else {
      step.kind = EventKind::kFixedNd;
    }
    step.logged = step.kind != EventKind::kInternal && rng.NextBernoulli(0.25);
    steps.push_back(step);
  }

  // Prefix a dummy deterministic step: committing "after step k" places the
  // process at a STATE, and a state's dangerousness is exactly the coloring
  // condition of an edge entering it — the dummy edge supplies that edge
  // for the initial state (k = -1).
  std::vector<PathStep> graph_steps;
  graph_steps.push_back(PathStep{EventKind::kInternal, false});
  graph_steps.insert(graph_steps.end(), steps.begin(), steps.end());

  ftx_sm::StateMachineGraph graph;
  std::vector<ftx_sm::EdgeId> taken = BuildPathGraph(graph_steps, &graph);
  ftx_sm::DangerousPathsResult coloring = ftx_sm::ColorDangerousPaths(graph);

  // For every possible commit position along the path, the graph verdict
  // ("the commit sits at the tail of a colored edge, i.e. commits the state
  // reached by a dangerous prefix... equivalently the NEXT edge out of the
  // committed state is colored") must match the trace verdict.
  for (int commit_after = -1; commit_after < length; ++commit_after) {
    // Trace: the path with one commit inserted after step `commit_after`
    // (-1 = no commit beyond the initial state), activation at the LAST
    // step before the crash.
    ftx_sm::Trace trace(1);
    for (int i = 0; i < length; ++i) {
      trace.Append(0, steps[static_cast<size_t>(i)].kind, -1,
                   steps[static_cast<size_t>(i)].logged);
      if (i == commit_after) {
        trace.Append(0, EventKind::kCommit);
      }
    }
    auto activation =
        trace.Append(0, EventKind::kInternal, -1, false, "fault-activation");
    trace.MarkFaultActivation(activation);
    trace.Append(0, EventKind::kCrash);

    ftx_sm::LoseWorkResult verdict = ftx_sm::CheckLoseWorkFull(trace, 0);
    ASSERT_TRUE(verdict.applicable);

    // Graph: committing after step k commits the state s_{k+1}; that state
    // is dangerous iff the edge ENTERING it is colored (same rule the
    // coloring algorithm applies). With the dummy prefix, the edge entering
    // s_{k+1} is taken[k+1].
    bool graph_violation = coloring.IsColored(taken[static_cast<size_t>(commit_after + 1)]);

    EXPECT_EQ(verdict.violated, graph_violation)
        << "seed " << GetParam() << " commit_after " << commit_after << " (path length "
        << length << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoseWorkCrossCheck, ::testing::Range<uint64_t>(1, 41));

}  // namespace
