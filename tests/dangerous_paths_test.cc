// Tests for the dangerous-paths coloring algorithms (§2.5), including the
// paper's Figure 6 cases and the multi-process receive classification.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/statemachine/dangerous_paths.h"
#include "src/statemachine/random_model.h"

namespace {

using ftx_sm::DangerousPathsResult;
using ftx_sm::EventKind;
using ftx_sm::StateMachineGraph;

// Fig. 6A: a deterministic chain ending in a crash — every event colored.
TEST(DangerousPaths, DeterministicChainToCrashFullyColored) {
  StateMachineGraph graph;
  graph.EnsureStates(4);
  auto e0 = graph.AddEdge(0, 1, EventKind::kInternal);
  auto e1 = graph.AddEdge(1, 2, EventKind::kInternal);
  auto crash = graph.AddEdge(2, 3, EventKind::kCrash);

  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_TRUE(result.IsColored(e0));
  EXPECT_TRUE(result.IsColored(e1));
  EXPECT_TRUE(result.IsColored(crash));
  EXPECT_EQ(result.num_colored, 3);
}

// Fig. 6B: a transient ND event with one crash-free result — committing
// before it is safe, so the edge into the choice state is NOT colored.
TEST(DangerousPaths, TransientNdEscapeHatchStopsColoring) {
  StateMachineGraph graph;
  graph.EnsureStates(6);
  auto entry = graph.AddEdge(0, 1, EventKind::kInternal);
  auto nd_bad = graph.AddEdge(1, 2, EventKind::kTransientNd);
  auto nd_good = graph.AddEdge(1, 3, EventKind::kTransientNd);
  auto crash = graph.AddEdge(2, 4, EventKind::kCrash);
  auto safe = graph.AddEdge(3, 5, EventKind::kInternal);

  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_TRUE(result.IsColored(crash));
  EXPECT_TRUE(result.IsColored(nd_bad));   // all its successors crash
  EXPECT_FALSE(result.IsColored(nd_good));
  EXPECT_FALSE(result.IsColored(safe));
  EXPECT_FALSE(result.IsColored(entry));   // the escape hatch saves it
}

// Fig. 6C: the same shape but with FIXED ND — the recovery system cannot
// rely on the event's result changing, so the entry edge IS colored.
TEST(DangerousPaths, FixedNdDoesNotProtect) {
  StateMachineGraph graph;
  graph.EnsureStates(6);
  auto entry = graph.AddEdge(0, 1, EventKind::kInternal);
  auto nd_bad = graph.AddEdge(1, 2, EventKind::kFixedNd);
  auto nd_good = graph.AddEdge(1, 3, EventKind::kFixedNd);
  graph.AddEdge(2, 4, EventKind::kCrash);
  graph.AddEdge(3, 5, EventKind::kInternal);

  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_TRUE(result.IsColored(nd_bad));
  EXPECT_FALSE(result.IsColored(nd_good));
  // Rule 3: a colored fixed-ND successor colors the incoming edge.
  EXPECT_TRUE(result.IsColored(entry));
}

TEST(DangerousPaths, NoCrashMeansNothingColored) {
  StateMachineGraph graph;
  graph.EnsureStates(4);
  graph.AddEdge(0, 1, EventKind::kInternal);
  graph.AddEdge(1, 2, EventKind::kTransientNd);
  graph.AddEdge(1, 3, EventKind::kTransientNd);
  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_EQ(result.num_colored, 0);
}

TEST(DangerousPaths, TerminationStateIsSafe) {
  // An edge into a state with no outgoing edges (normal completion) is not
  // dangerous even when a sibling path crashes.
  StateMachineGraph graph;
  graph.EnsureStates(5);
  auto to_choice = graph.AddEdge(0, 1, EventKind::kInternal);
  auto nd_done = graph.AddEdge(1, 2, EventKind::kTransientNd);  // terminal
  auto nd_doom = graph.AddEdge(1, 3, EventKind::kTransientNd);
  graph.AddEdge(3, 4, EventKind::kCrash);

  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_FALSE(result.IsColored(nd_done));
  EXPECT_TRUE(result.IsColored(nd_doom));
  EXPECT_FALSE(result.IsColored(to_choice));
}

TEST(DangerousPaths, ColoringPropagatesThroughLongDeterministicRuns) {
  // Fig. 7 shape: dangerous paths extend backwards from crash events
  // through deterministic stretches until a transient ND escape.
  StateMachineGraph graph;
  graph.EnsureStates(8);
  auto start = graph.AddEdge(0, 1, EventKind::kTransientNd);  // escape A
  auto alt = graph.AddEdge(0, 2, EventKind::kTransientNd);    // escape B
  auto d1 = graph.AddEdge(1, 3, EventKind::kInternal);
  auto d2 = graph.AddEdge(3, 4, EventKind::kInternal);
  auto crash = graph.AddEdge(4, 5, EventKind::kCrash);
  auto safe1 = graph.AddEdge(2, 6, EventKind::kInternal);
  auto safe2 = graph.AddEdge(6, 7, EventKind::kInternal);

  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_TRUE(result.IsColored(start));  // whole doomed branch colored
  EXPECT_TRUE(result.IsColored(d1));
  EXPECT_TRUE(result.IsColored(d2));
  EXPECT_TRUE(result.IsColored(crash));
  EXPECT_FALSE(result.IsColored(alt));
  EXPECT_FALSE(result.IsColored(safe1));
  EXPECT_FALSE(result.IsColored(safe2));
}

TEST(DangerousPaths, CyclicGraphReachesFixpoint) {
  StateMachineGraph graph;
  graph.EnsureStates(4);
  graph.AddEdge(0, 1, EventKind::kInternal);
  graph.AddEdge(1, 0, EventKind::kInternal);  // cycle
  graph.AddEdge(1, 2, EventKind::kCrash);
  // Wait: state 1 branches deterministically + crash — allowed (crash is
  // exogenous). The cycle 0<->1 always reaches a state from which the only
  // program edge loops; no full coloring because the loop never *forces*
  // the crash... but every out edge of 1 is {back edge, crash}. The back
  // edge is colored iff all of state 0's out edges are colored, and so on.
  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_GE(result.fixpoint_rounds, 1);
  // The crash edge itself is always colored.
  EXPECT_GE(result.num_colored, 1);
}

TEST(DangerousPaths, OverrideReclassifiesReceiveEdges) {
  // A receive edge (transient by default) protects its predecessor; when
  // the multi-process snapshot pins it fixed, protection vanishes.
  StateMachineGraph graph;
  graph.EnsureStates(6);
  auto entry = graph.AddEdge(0, 1, EventKind::kInternal);
  auto recv_bad = graph.AddEdge(1, 2, EventKind::kReceive);
  auto recv_good = graph.AddEdge(1, 3, EventKind::kReceive);
  graph.AddEdge(2, 4, EventKind::kCrash);
  graph.AddEdge(3, 5, EventKind::kInternal);

  DangerousPathsResult default_result = ftx_sm::ColorDangerousPaths(graph);
  EXPECT_FALSE(default_result.IsColored(entry));

  std::map<ftx_sm::EdgeId, EventKind> overrides;
  overrides[recv_bad] = EventKind::kFixedNd;
  overrides[recv_good] = EventKind::kFixedNd;
  DangerousPathsResult pinned = ftx_sm::ColorDangerousPaths(graph, overrides);
  EXPECT_TRUE(pinned.IsColored(entry));
}

// --- multi-process receive classification ---

TEST(ReceiveClassification, TransientWhenSenderHasUncommittedTransientNd) {
  ftx_sm::Trace trace(2);
  trace.Append(1, EventKind::kCommit);
  trace.Append(1, EventKind::kTransientNd);  // after last commit
  trace.Append(1, EventKind::kSend, 10);
  trace.Append(0, EventKind::kReceive, 10);

  auto classes = ftx_sm::ClassifyReceivesForProcess(trace, 0);
  ASSERT_EQ(classes.count(10), 1u);
  EXPECT_EQ(classes[10], ftx_sm::ReceiveClass::kTransient);
}

TEST(ReceiveClassification, FixedWhenSenderCommittedAfterItsNd) {
  ftx_sm::Trace trace(2);
  trace.Append(1, EventKind::kTransientNd);
  trace.Append(1, EventKind::kCommit);  // ND committed: message is pinned
  trace.Append(1, EventKind::kSend, 10);
  trace.Append(0, EventKind::kReceive, 10);

  auto classes = ftx_sm::ClassifyReceivesForProcess(trace, 0);
  EXPECT_EQ(classes[10], ftx_sm::ReceiveClass::kFixed);
}

TEST(ReceiveClassification, FixedWhenSenderPurelyDeterministic) {
  ftx_sm::Trace trace(2);
  trace.Append(1, EventKind::kInternal);
  trace.Append(1, EventKind::kSend, 10);
  trace.Append(0, EventKind::kReceive, 10);

  auto classes = ftx_sm::ClassifyReceivesForProcess(trace, 0);
  EXPECT_EQ(classes[10], ftx_sm::ReceiveClass::kFixed);
}

TEST(ReceiveClassification, LoggedSenderNdCountsAsFixed) {
  ftx_sm::Trace trace(2);
  trace.Append(1, EventKind::kTransientNd, -1, /*logged=*/true);
  trace.Append(1, EventKind::kSend, 10);
  trace.Append(0, EventKind::kReceive, 10);

  auto classes = ftx_sm::ClassifyReceivesForProcess(trace, 0);
  EXPECT_EQ(classes[10], ftx_sm::ReceiveClass::kFixed);
}

TEST(MultiProcessDangerousPaths, EndToEnd) {
  // Process 0's graph: entry -> receive-choice; one receive leads to crash.
  StateMachineGraph graph;
  graph.EnsureStates(6);
  auto entry = graph.AddEdge(0, 1, EventKind::kInternal);
  auto recv_doom = graph.AddEdge(1, 2, EventKind::kReceive);
  auto recv_safe = graph.AddEdge(1, 3, EventKind::kReceive);
  graph.AddEdge(2, 4, EventKind::kCrash);
  graph.AddEdge(3, 5, EventKind::kInternal);

  // Trace A: sender had uncommitted transient ND -> receive transient ->
  // entry not dangerous.
  {
    ftx_sm::Trace trace(2);
    trace.Append(1, EventKind::kTransientNd);
    trace.Append(1, EventKind::kSend, 10);
    trace.Append(0, EventKind::kReceive, 10);
    std::map<ftx_sm::EdgeId, int64_t> edge_to_message{{recv_doom, 10}, {recv_safe, 10}};
    auto result = ftx_sm::MultiProcessDangerousPaths(graph, trace, 0, edge_to_message);
    EXPECT_FALSE(result.IsColored(entry));
  }
  // Trace B: sender committed before sending -> receive fixed -> entry
  // dangerous.
  {
    ftx_sm::Trace trace(2);
    trace.Append(1, EventKind::kTransientNd);
    trace.Append(1, EventKind::kCommit);
    trace.Append(1, EventKind::kSend, 10);
    trace.Append(0, EventKind::kReceive, 10);
    std::map<ftx_sm::EdgeId, int64_t> edge_to_message{{recv_doom, 10}, {recv_safe, 10}};
    auto result = ftx_sm::MultiProcessDangerousPaths(graph, trace, 0, edge_to_message);
    EXPECT_TRUE(result.IsColored(entry));
  }
}

// --- properties over random graphs ---

class DangerousPathsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DangerousPathsProperty, CrashEdgesAlwaysColored) {
  ftx::Rng rng(GetParam());
  ftx_sm::RandomGraphOptions options;
  StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
  for (const auto& edge : graph.edges()) {
    if (edge.kind == EventKind::kCrash) {
      EXPECT_TRUE(result.IsColored(edge.id));
    }
  }
}

TEST_P(DangerousPathsProperty, ColoringIsClosedUnderTheRules) {
  // Verify the fixpoint: after the algorithm finishes, re-applying either
  // rule changes nothing (soundness of the fixpoint loop).
  ftx::Rng rng(GetParam() ^ 0x5555);
  ftx_sm::RandomGraphOptions options;
  options.num_states = 64;
  options.crash_probability = 0.2;
  StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
  DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);

  for (const auto& edge : graph.edges()) {
    if (result.IsColored(edge.id) || edge.kind == EventKind::kCrash) {
      continue;
    }
    const auto& out = graph.OutEdges(edge.to);
    if (out.empty()) {
      continue;
    }
    bool all_colored = true;
    bool colored_fixed = false;
    for (auto succ : out) {
      if (!result.IsColored(succ)) {
        all_colored = false;
      } else if (graph.edge(succ).kind == EventKind::kFixedNd) {
        colored_fixed = true;
      }
    }
    EXPECT_FALSE(all_colored) << "edge " << edge.id << " should have been colored (rule 2)";
    EXPECT_FALSE(colored_fixed) << "edge " << edge.id << " should have been colored (rule 3)";
  }
}

TEST_P(DangerousPathsProperty, MoreCrashesColorMore) {
  // Monotonicity: adding crash edges can only grow the dangerous set.
  ftx::Rng rng(GetParam() ^ 0xaaaa);
  ftx_sm::RandomGraphOptions options;
  options.num_states = 48;
  options.crash_probability = 0.05;
  StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
  DangerousPathsResult before = ftx_sm::ColorDangerousPaths(graph);

  // Add a crash edge from a random mid state.
  ftx_sm::StateId victim = static_cast<ftx_sm::StateId>(rng.NextBounded(24));
  ftx_sm::StateId dead = graph.AddState();
  graph.AddEdge(victim, dead, EventKind::kCrash);
  DangerousPathsResult after = ftx_sm::ColorDangerousPaths(graph);

  for (size_t i = 0; i < before.colored.size(); ++i) {
    if (before.colored[i]) {
      EXPECT_TRUE(after.colored[i]) << "edge " << i << " lost its coloring";
    }
  }
  EXPECT_GE(after.num_colored, before.num_colored);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DangerousPathsProperty, ::testing::Range<uint64_t>(1, 21));

}  // namespace
