// Hardening tests: failure timing edge cases, repeated and overlapping
// failures, zero-work runs, restart-from-scratch state hygiene, and
// runtime bookkeeping corners.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/recovery/consistency.h"

namespace {

TEST(EdgeCases, FailureAtTimeZero) {
  // The process dies before executing a single step; recovery restarts it
  // from checkpoint #0 and the run completes normally.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 120;
  spec.protocol = "cpvs";
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Nanoseconds(1));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(EdgeCases, BackToBackFailures) {
  // A second failure strikes immediately after recovery from the first.
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 150;
  spec.protocol = "cbndvs";
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(3.0),
                                        ftx::Milliseconds(10));
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(3.0) +
                                               ftx::Milliseconds(12));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
  EXPECT_GE(check.rollbacks, 2);
}

TEST(EdgeCases, FailureWhileAlreadyDead) {
  // A failure scheduled while the process is already down is a no-op, not a
  // double-kill.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 150;
  spec.protocol = "cpvs";
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(20),
                                   /*recovery_delay=*/ftx::Milliseconds(40));
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(30));  // while down
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
}

TEST(EdgeCases, SimultaneousFailureOfAllPeers) {
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 4;
  spec.protocol = "cpvs";
  spec.seed = 41;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        for (int pid = 0; pid < 4; ++pid) {
          computation.ScheduleStopFailure(pid, ftx::TimePoint() + ftx::Milliseconds(160));
        }
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(EdgeCases, EmptyInputScriptFinishesImmediately) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 0;  // DefaultScale kicks in; override with an empty script
  auto computation = ftx::BuildComputation(spec);
  computation->SetInputScript(0, {});
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
  EXPECT_EQ(computation->recorder().size(), 0u);
}

TEST(EdgeCases, FailureAfterWorkloadCompleted) {
  // The failure lands after the process finished: nothing to recover,
  // nothing lost.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 60;
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(30.0));
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
  EXPECT_EQ(result.total_rollbacks, 0);
}

TEST(EdgeCases, RestartFromScratchIsClean) {
  // After a volatile-store OS crash, the restarted process must behave as a
  // brand-new one: same end state as an undisturbed run.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 120;
  spec.protocol = "cpvs";
  spec.seed = 91;

  ftx::RunSpec clean_spec = spec;
  auto clean = ftx::RunExperiment(clean_spec);

  spec.store = ftx::StoreKind::kVolatileMemory;
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleOsStopFailure(ftx::TimePoint() + ftx::Milliseconds(15),
                                     ftx::Milliseconds(5));
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);

  // Outputs: the full stream, preceded by the pre-crash prefix (repeats).
  auto check = ftx_rec::CheckConsistentRecovery(clean.outputs, computation->recorder(), 1);
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(EdgeCases, RecoveryDelayLongerThanRemainingWork) {
  // Recovery takes longer than the rest of the run would have: still
  // completes, just late.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 100;
  spec.protocol = "cbndvs";
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(10),
                                   /*recovery_delay=*/ftx::Seconds(120.0));
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
  EXPECT_GT((result.end_time - ftx::TimePoint()).seconds(), 100.0);
}

TEST(EdgeCases, ManySeedsNeverDeadlock) {
  // Determinism + liveness sweep: short treadmarks runs with one failure at
  // a seed-dependent time must always terminate.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ftx::RunSpec spec;
    spec.workload = "treadmarks";
    spec.scale = 3;
    spec.protocol = seed % 2 == 0 ? "cpvs" : "cbndvs-log";
    spec.seed = seed;
    auto computation = ftx::BuildComputation(spec);
    int victim = static_cast<int>(seed % 4);
    computation->ScheduleStopFailure(victim,
                                     ftx::TimePoint() + ftx::Milliseconds(40 + 30 * seed));
    auto result = computation->Run();
    EXPECT_TRUE(result.all_done) << "seed " << seed << " victim " << victim;
  }
}

}  // namespace
