// Tests for the ftx::env execution-environment seam (src/env/):
//
//   * Environment::Builder validates every required dependency and names the
//     missing field in its abort message;
//   * env::threads primitives uphold the seam contracts for real — the
//     channel transport delivers in send order with the recovery-buffer
//     semantics recovery depends on, and the file-backed stable medium
//     genuinely loses bytes appended but not synced when a kill lands in the
//     torn-commit window;
//   * the scripted cross-backend harness produces byte-identical decision
//     logs on the simulator oracle and the threads backend, crash injection
//     included, and the sim path is --jobs invariant (safe to shard).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/parallel.h"
#include "src/env/env.h"
#include "src/env/script_runner.h"
#include "src/env/sim_env.h"
#include "src/env/thread_env.h"
#include "src/recovery/output_recorder.h"
#include "src/sim/kernel.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/statemachine/random_model.h"
#include "src/statemachine/trace.h"
#include "src/storage/stable_store.h"

namespace {

using ftx::env::ChannelTransport;
using ftx::env::Environment;
using ftx::env::FileMedium;
using ftx::env::KillSwitch;
using ftx::env::Message;

// A full set of valid dependencies for builder tests.
struct BuilderFixture {
  ftx_sim::Simulator sim{1};
  ftx_sim::Network network{&sim, 3};
  ftx::env::SimClock clock{&sim};
  ftx::env::SimTransport transport{&network};
  ftx_sim::KernelSim kernel{&clock, 3};
  ftx_rec::OutputRecorder recorder;
  ftx_sm::Trace trace{3};
  ftx_store::RioStore store;
};

TEST(EnvBuilder, BuildSucceedsWithEveryRequiredDependency) {
  BuilderFixture fx;
  Environment env = Environment::Builder()
                        .WithClock(&fx.clock)
                        .WithTransport(&fx.transport)
                        .WithKernel(&fx.kernel)
                        .WithRecorder(&fx.recorder)
                        .Build();
  EXPECT_EQ(env.clock, &fx.clock);
  EXPECT_EQ(env.transport, &fx.transport);
  EXPECT_EQ(env.kernel, &fx.kernel);
  EXPECT_EQ(env.recorder, &fx.recorder);
  EXPECT_EQ(env.trace, nullptr);  // optional for non-recoverable builds
}

TEST(EnvBuilderDeathTest, BuildNamesEachMissingRequiredField) {
  BuilderFixture fx;
  EXPECT_DEATH(Environment::Builder()
                   .WithTransport(&fx.transport)
                   .WithKernel(&fx.kernel)
                   .WithRecorder(&fx.recorder)
                   .Build(),
               "missing required dependency 'clock'");
  EXPECT_DEATH(Environment::Builder()
                   .WithClock(&fx.clock)
                   .WithKernel(&fx.kernel)
                   .WithRecorder(&fx.recorder)
                   .Build(),
               "missing required dependency 'transport'");
  EXPECT_DEATH(Environment::Builder()
                   .WithClock(&fx.clock)
                   .WithTransport(&fx.transport)
                   .WithRecorder(&fx.recorder)
                   .Build(),
               "missing required dependency 'kernel'");
  EXPECT_DEATH(Environment::Builder()
                   .WithClock(&fx.clock)
                   .WithTransport(&fx.transport)
                   .WithKernel(&fx.kernel)
                   .Build(),
               "missing required dependency 'recorder'");
}

TEST(EnvBuilderDeathTest, BuildRecoverableAdditionallyRequiresTraceAndStore) {
  BuilderFixture fx;
  Environment::Builder base = Environment::Builder()
                                  .WithClock(&fx.clock)
                                  .WithTransport(&fx.transport)
                                  .WithKernel(&fx.kernel)
                                  .WithRecorder(&fx.recorder);
  EXPECT_DEATH(Environment::Builder(base).WithStore(&fx.store).BuildRecoverable(),
               "missing required dependency 'trace'");
  EXPECT_DEATH(Environment::Builder(base).WithTrace(&fx.trace).BuildRecoverable(),
               "missing required dependency 'store'");
  Environment env =
      Environment::Builder(base).WithTrace(&fx.trace).WithStore(&fx.store).BuildRecoverable();
  EXPECT_EQ(env.trace, &fx.trace);
  EXPECT_EQ(env.store, &fx.store);
}

TEST(ChannelTransport, DeliversInSendOrderWithIncreasingIds) {
  ChannelTransport transport(3);
  EXPECT_EQ(transport.num_processes(), 3);
  // Interleave two senders toward process 2; arrival order must equal global
  // send order (sends enqueue synchronously), ids strictly increasing.
  std::vector<int64_t> sent_ids;
  for (int i = 0; i < 6; ++i) {
    int src = i % 2;
    ftx::Bytes payload = {static_cast<uint8_t>(0xa0 + i)};
    sent_ids.push_back(transport.Send(src, 2, payload));
  }
  for (size_t i = 1; i < sent_ids.size(); ++i) {
    EXPECT_LT(sent_ids[i - 1], sent_ids[i]);
  }
  EXPECT_FALSE(transport.HasPending(0));
  ASSERT_TRUE(transport.HasPending(2));
  const Message* peeked = transport.PeekNext(2);
  ASSERT_NE(peeked, nullptr);
  EXPECT_EQ(peeked->id, sent_ids[0]);
  for (int i = 0; i < 6; ++i) {
    auto message = transport.Deliver(2);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->id, sent_ids[static_cast<size_t>(i)]);
    EXPECT_EQ(message->src, i % 2);
    ASSERT_EQ(message->payload.size(), 1u);
    EXPECT_EQ(message->payload[0], 0xa0 + i);
  }
  EXPECT_FALSE(transport.Deliver(2).has_value());
}

TEST(ChannelTransport, RetainRequeueReleaseAndDropNewest) {
  ChannelTransport transport(2);
  std::vector<int64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(transport.Send(0, 1, {static_cast<uint8_t>(i)}));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(transport.Deliver(1).has_value());
  }
  EXPECT_FALSE(transport.HasPending(1));

  // Rollback: retained messages return to the inbox front in original order.
  transport.RequeueRetained(1);
  for (int i = 0; i < 3; ++i) {
    auto message = transport.Deliver(1);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->id, ids[static_cast<size_t>(i)]);
  }

  // A logged receive is dropped from the buffer: only the older two return.
  transport.DropNewestRetained(1, ids[2]);
  transport.RequeueRetained(1);
  auto first = transport.Deliver(1);
  auto second = transport.Deliver(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->id, ids[0]);
  EXPECT_EQ(second->id, ids[1]);
  EXPECT_FALSE(transport.Deliver(1).has_value());

  // Commit: released messages never come back.
  transport.ReleaseAllDelivered(1);
  transport.RequeueRetained(1);
  EXPECT_FALSE(transport.HasPending(1));
}

TEST(FileMedium, KillInTornCommitWindowLosesUnsyncedBytes) {
  FileMedium medium("ftx-env-test");
  KillSwitch kill;

  // Commit 1 completes: append + sync.
  medium.Append("rec1", 4);
  medium.Sync();
  EXPECT_EQ(medium.durable_bytes(), 4);

  // Commit 2 is killed between Append and Sync — the torn-commit window the
  // script runner's CommitThroughMedium models.
  kill.armed.store(true);
  medium.Append("rec2", 4);
  ASSERT_TRUE(kill.armed.load());  // armed: the commit path must not Sync
  EXPECT_EQ(medium.buffered_bytes(), 4);
  medium.CrashDropBuffered();
  kill.armed.store(false);

  EXPECT_EQ(medium.durable_bytes(), 4);
  ftx::Bytes durable;
  medium.ReadDurable(&durable);
  ASSERT_EQ(durable.size(), 4u);
  EXPECT_EQ(std::memcmp(durable.data(), "rec1", 4), 0);

  // Recovery re-runs the commit; this time it reaches Sync.
  medium.Append("rec2", 4);
  medium.Sync();
  EXPECT_EQ(medium.durable_bytes(), 8);
  medium.ReadDurable(&durable);
  ASSERT_EQ(durable.size(), 8u);
  EXPECT_EQ(std::memcmp(durable.data() + 4, "rec2", 4), 0);
}

std::vector<ftx_sm::ScriptedEvent> SmallScript(uint64_t seed, int events_per_process) {
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 3;
  options.events_per_process = events_per_process;
  options.send_probability = 0.3;
  options.logged_fraction = 0.4;
  ftx::Rng rng(seed);
  return ftx_sm::MakeRandomScript(&rng, options);
}

TEST(ScriptRunner, BackendsProduceIdenticalDecisionLogs) {
  std::vector<ftx_sm::ScriptedEvent> script = SmallScript(7, 12);
  ftx::env::ScriptRunOptions options;
  options.protocol = "cbndvs";  // coordinated: exercises the 2PC round path
  ftx::env::DecisionLog sim_log = ftx::env::RunScriptOnSim(script, options);
  ftx::env::DecisionLog threads_log = ftx::env::RunScriptOnThreads(script, options);
  EXPECT_GT(sim_log.commits, 0);
  EXPECT_TRUE(sim_log.clean());
  EXPECT_TRUE(threads_log.clean());
  EXPECT_EQ(sim_log.Canonical(), threads_log.Canonical());
  EXPECT_EQ(sim_log.Crc(), threads_log.Crc());
}

TEST(ScriptRunner, CrashInjectionRollsBackIdenticallyOnBothBackends) {
  std::vector<ftx_sm::ScriptedEvent> script =
      ftx::env::InjectCrashes(SmallScript(11, 12), 2, 99, 3);
  ftx::env::ScriptRunOptions options;
  options.protocol = "cpvs";
  ftx::env::DecisionLog sim_log = ftx::env::RunScriptOnSim(script, options);
  ftx::env::DecisionLog threads_log = ftx::env::RunScriptOnThreads(script, options);
  EXPECT_EQ(sim_log.rollbacks, 2);
  EXPECT_TRUE(sim_log.clean());
  EXPECT_TRUE(threads_log.clean());
  EXPECT_EQ(sim_log.Canonical(), threads_log.Canonical());
}

TEST(ScriptRunner, SimBackendIsJobsInvariant) {
  // The sim runner is a pure function of (script, options): sharding seeds
  // across a TrialPool must not change a byte of any decision log.
  constexpr int kSeeds = 8;
  auto run_all = [](int jobs) {
    std::vector<std::string> logs(kSeeds);
    ftx::TrialPool pool(jobs);
    pool.ParallelFor(kSeeds, [&logs](int64_t i) {
      std::vector<ftx_sm::ScriptedEvent> script =
          ftx::env::InjectCrashes(SmallScript(100 + static_cast<uint64_t>(i), 10), 1,
                                  static_cast<uint64_t>(i), 3);
      ftx::env::ScriptRunOptions options;
      options.protocol = "cbndvs";
      logs[static_cast<size_t>(i)] = ftx::env::RunScriptOnSim(script, options).Canonical();
    });
    return logs;
  };
  EXPECT_EQ(run_all(1), run_all(8));
}

}  // namespace
