// Coverage for the experiment drivers (src/core/experiment.h) and the
// remaining runtime bookkeeping corners: overhead measurement sanity,
// tweak_options plumbing, 2PC pending-overhead charging, and the
// communication mask driving coordinated checkpointing.

#include <gtest/gtest.h>

#include "src/core/experiment.h"

namespace {

TEST(Experiment, OverheadRowFieldsAreCoherent) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 150;
  spec.protocol = "cpvs";
  ftx::OverheadRow row = ftx::MeasureOverhead(spec);
  EXPECT_EQ(row.workload, "nvi");
  EXPECT_EQ(row.protocol, "cpvs");
  EXPECT_GT(row.baseline.nanos(), 0);
  EXPECT_GE(row.recoverable.nanos(), row.baseline.nanos());
  EXPECT_GE(row.overhead_percent, 0.0);
  EXPECT_GT(row.checkpoints, 140);
  EXPECT_GT(row.checkpoints_per_second, 0.0);
}

TEST(Experiment, BaselineIsProtocolIndependent) {
  ftx::RunSpec a;
  a.workload = "postgres";
  a.scale = 200;
  a.mode = ftx_dc::RuntimeMode::kBaseline;
  a.protocol = "cand";
  ftx::RunSpec b = a;
  b.protocol = "hypervisor";
  EXPECT_EQ(ftx::RunExperiment(a).elapsed.nanos(), ftx::RunExperiment(b).elapsed.nanos());
}

TEST(Experiment, TweakOptionsReachesTheComputation) {
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 50;
  bool tweaked = false;
  spec.tweak_options = [&tweaked](ftx::ComputationOptions* options) {
    tweaked = true;
    options->max_sim_time = ftx::Seconds(100.0);
  };
  auto computation = ftx::BuildComputation(spec);
  EXPECT_TRUE(tweaked);
  EXPECT_EQ(computation->options().max_sim_time.nanos(), ftx::Seconds(100.0).nanos());
}

TEST(Experiment, DiskOverheadExceedsRioOverhead) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 200;
  spec.protocol = "cpvs";
  spec.store = ftx::StoreKind::kRio;
  double rio = ftx::MeasureOverhead(spec).overhead_percent;
  spec.store = ftx::StoreKind::kDisk;
  double disk = ftx::MeasureOverhead(spec).overhead_percent;
  EXPECT_GT(disk, rio * 5);
}

TEST(Runtime2pc, ParticipantCostsChargeAtTheirNextStep) {
  // Under CPV-2PC on treadmarks, worker processes commit as participants of
  // rounds initiated by process 0; their coordinated_commits stat must be
  // populated and their commit time nonzero even though they never
  // initiated anything.
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 25;  // covers the report_every=20 progress visible
  spec.protocol = "cpv-2pc";
  auto computation = ftx::BuildComputation(spec);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  for (int p = 1; p < 4; ++p) {
    const auto& stats = computation->runtime(p).stats();
    EXPECT_GT(stats.coordinated_commits, 0) << p;
    EXPECT_GT(stats.commit_time.nanos(), 0) << p;
  }
  // Process 0 initiated: its commits are not counted as coordinated.
  EXPECT_GT(computation->runtime(0).stats().commits, 0);
}

TEST(Runtime2pc, CommunicationMaskDrivesCoordinatedCkptParticipants) {
  // In treadmarks every process exchanges pages with every other each
  // iteration, so coordinated-ckpt's closure must include all four — its
  // commit counts match cpv-2pc's on this workload.
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 25;
  spec.seed = 3;
  spec.protocol = "coordinated-ckpt";
  ftx::RunOutput closure = ftx::RunExperiment(spec);
  spec.protocol = "cpv-2pc";
  ftx::RunOutput all = ftx::RunExperiment(spec);
  ASSERT_TRUE(closure.result.all_done);
  EXPECT_EQ(closure.checkpoints, all.checkpoints);
}

TEST(Experiment, VerifyConsistentRecoveryReportsDiagnostics) {
  // A run that cannot complete (failure with auto-recovery disabled) must
  // come back as incomplete with a diagnostic, not crash the harness.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 100;
  spec.tweak_options = [](ftx::ComputationOptions* options) {
    options->auto_recover = false;
    options->max_sim_time = ftx::Seconds(2.0);
  };
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(5),
                                   /*recovery_delay=*/ftx::Seconds(500.0));
  auto result = computation->Run();
  EXPECT_FALSE(result.all_done);
}

}  // namespace
