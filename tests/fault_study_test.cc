// Tests for the fault-injection study machinery (§4): the injector's
// corruption/detection mechanics, the end-to-end iff property linking the
// trace-level Lose-work measurement to actual recovery outcomes, and the
// OS-fault manifestation model.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/core/fault_study.h"
#include "src/faults/calibration.h"
#include "src/faults/injector.h"
#include "src/faults/os_faults.h"

namespace {

TEST(FaultTypes, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
    names.insert(ftx_fault::FaultTypeName(type));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(ftx_fault::kNumFaultTypes));
}

TEST(Calibration, ProbabilitiesAreValid) {
  for (const char* app : {"nvi", "postgres", "magic"}) {
    for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
      double app_p = ftx_fault::AppFaultSlowDetectionProbability(app, type);
      double os_p = ftx_fault::OsFaultSlowDetectionProbability(app, type);
      EXPECT_GE(app_p, 0.0);
      EXPECT_LE(app_p, 1.0);
      EXPECT_GE(os_p, 0.0);
      EXPECT_LE(os_p, 1.0);
      EXPECT_GT(ftx_fault::ContinueProbability(type), 0.0);
      EXPECT_LT(ftx_fault::ContinueProbability(type), 1.0);
    }
    double prop = ftx_fault::OsFaultPropagationProbability(app);
    EXPECT_GT(prop, 0.0);
    EXPECT_LT(prop, 1.0);
  }
}

TEST(Calibration, NviPropagatesMoreThanPostgres) {
  // nvi's 10x syscall rate (§4.2) -> higher propagation fraction.
  EXPECT_GT(ftx_fault::OsFaultPropagationProbability("nvi"),
            ftx_fault::OsFaultPropagationProbability("postgres"));
}

TEST(OsFaultModel, ManifestationRatioTracksCalibration) {
  ftx::Rng rng(5);
  int propagation = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    auto plan = ftx_fault::PlanOsFault(&rng, "nvi", ftx_fault::FaultType::kHeapBitFlip);
    if (plan.manifestation == ftx_fault::OsFaultManifestation::kPropagationFailure) {
      ++propagation;
    }
  }
  EXPECT_NEAR(static_cast<double>(propagation) / n,
              ftx_fault::OsFaultPropagationProbability("nvi"), 0.03);
}

// --- the end-to-end iff property (the paper's §4.1 cross-check) ---
//
// "runs recovered from crashes if and only if they did not commit after
// fault activation": the trace-level Lose-work verdict and the actual
// recovery outcome must agree on every crashing run.

using IffParam = std::tuple<std::string, int /*FaultType*/, uint64_t>;

class EndToEndIff : public ::testing::TestWithParam<IffParam> {};

TEST_P(EndToEndIff, TraceVerdictMatchesRecoveryOutcome) {
  const auto& [app, type_index, seed] = GetParam();
  ftx::FaultRunResult result = ftx::RunApplicationFault(
      app, static_cast<ftx_fault::FaultType>(type_index), seed);
  if (!result.crashed) {
    GTEST_SKIP() << "benign run (corruption never used)";
  }
  EXPECT_TRUE(result.trace_and_outcome_agree)
      << app << "/" << std::string(ftx_fault::FaultTypeName(
                            static_cast<ftx_fault::FaultType>(type_index)))
      << " seed " << seed << ": violated=" << result.violated_lose_work
      << " recovery_failed=" << result.recovery_failed;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEndIff,
                         ::testing::Combine(::testing::Values("nvi", "postgres"),
                                            ::testing::Range(0, ftx_fault::kNumFaultTypes),
                                            ::testing::Range<uint64_t>(100, 106)));

TEST(FaultStudy, StopFailureManifestationsAlwaysRecover) {
  // Pure stop failures from OS faults never defeat recovery; collect a few.
  int checked = 0;
  for (uint64_t seed = 0; seed < 80 && checked < 10; ++seed) {
    ftx::Rng rng(seed * 0xd1b54a32d192ed03ULL + 5);
    auto plan = ftx_fault::PlanOsFault(&rng, "postgres", ftx_fault::FaultType::kStackBitFlip);
    if (plan.manifestation != ftx_fault::OsFaultManifestation::kStopFailure) {
      continue;
    }
    ftx::FaultRunResult result =
        ftx::RunOsFault("postgres", ftx_fault::FaultType::kStackBitFlip, seed);
    EXPECT_FALSE(result.recovery_failed) << "seed " << seed;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(FaultStudy, AggregationCountsAreCoherent) {
  ftx::FaultStudySpec spec;
  spec.app = "postgres";
  spec.type = ftx_fault::FaultType::kHeapBitFlip;
  spec.target_crashes = 15;
  spec.seed_base = 400;
  ftx::FaultStudyRow row = ftx::RunFaultStudy(spec);
  EXPECT_EQ(row.crashes, 15);
  EXPECT_LE(row.violations, row.crashes);
  EXPECT_LE(row.failed_recoveries, row.crashes);
  EXPECT_NEAR(row.violation_fraction, static_cast<double>(row.violations) / row.crashes, 1e-9);
  // Heap bit flips are the long-latency fault class: expect a majority of
  // crashing runs to violate Lose-work, as in Table 1.
  EXPECT_GT(row.violation_fraction, 0.5);
}

TEST(FaultStudy, FastDetectingFaultsRarelyViolate) {
  // nvi stack flips crash before the next commit (Table 1's 0% row).
  ftx::FaultStudySpec spec;
  spec.app = "nvi";
  spec.type = ftx_fault::FaultType::kStackBitFlip;
  spec.target_crashes = 15;
  spec.seed_base = 500;
  ftx::FaultStudyRow row = ftx::RunFaultStudy(spec);
  EXPECT_EQ(row.crashes, 15);
  EXPECT_LT(row.violation_fraction, 0.2);
}

TEST(FaultStudy, SpecApiIsDeterministicForFixedSeedBase) {
  ftx::FaultStudySpec spec;
  spec.app = "postgres";
  spec.type = ftx_fault::FaultType::kDeleteBranch;
  spec.kind = ftx::FaultStudyKind::kOs;
  spec.target_crashes = 8;
  spec.seed_base = 4400;
  ftx::FaultStudyRow first = ftx::RunFaultStudy(spec);
  ftx::FaultStudyRow second = ftx::RunFaultStudy(spec);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.failed_recoveries, second.failed_recoveries);
}

TEST(FaultStudy, RareCommitProtocolViolatesLess) {
  // The paper picked CPVS as "the best protocol possible for not violating
  // Lose-work" among Save-work protocols for single-process apps. A
  // logging protocol commits far less often, so the same faults land on
  // dangerous paths less often — the protocol-space tradeoff of Fig. 4.
  int cpvs_violations = 0;
  int log_violations = 0;
  int cpvs_crashes = 0;
  int log_crashes = 0;
  for (uint64_t seed = 600; seed < 660; ++seed) {
    auto a = ftx::RunApplicationFault("nvi", ftx_fault::FaultType::kHeapBitFlip, seed, "cpvs");
    if (a.crashed) {
      ++cpvs_crashes;
      cpvs_violations += a.violated_lose_work ? 1 : 0;
    }
    auto b =
        ftx::RunApplicationFault("nvi", ftx_fault::FaultType::kHeapBitFlip, seed, "cbndvs-log");
    if (b.crashed) {
      ++log_crashes;
      log_violations += b.violated_lose_work ? 1 : 0;
    }
  }
  ASSERT_GT(cpvs_crashes, 10);
  ASSERT_GT(log_crashes, 10);
  EXPECT_LT(static_cast<double>(log_violations) / log_crashes,
            static_cast<double>(cpvs_violations) / cpvs_crashes + 0.01);
}

// --- injector mechanics on a bare harness ---

TEST(Injector, OutcomeRecordsActivationAndCrash) {
  ftx::FaultRunResult result =
      ftx::RunApplicationFault("postgres", ftx_fault::FaultType::kDeleteBranch, 12345);
  // Whatever happened, the bookkeeping must be internally consistent:
  if (result.crashed) {
    EXPECT_FALSE(result.benign);
  }
}

}  // namespace
