// Integration matrix: consistent recovery from stop failures across
// workloads × protocols × stores, plus multi-process failure scenarios —
// the paper's §3 claim ("several real applications get failure transparency
// in the presence of simple stop failures") exercised end to end.

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/experiment.h"
#include "src/statemachine/invariants.h"

namespace {

// workload, protocol, store, failure time (ms)
using MatrixParam = std::tuple<std::string, std::string, ftx::StoreKind>;

class StopFailureMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StopFailureMatrix, RecoversConsistently) {
  const auto& [workload, protocol, store] = GetParam();
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.protocol = protocol;
  spec.store = store;
  spec.seed = 17;
  spec.scale = workload == "treadmarks" ? 5 : workload == "magic" ? 30 : 120;

  // Fail the (single or first) process somewhere mid-run (postgres runs
  // without think time, so its whole run is sub-second).
  ftx::Duration when = workload == "magic"        ? ftx::Seconds(9.0)
                       : workload == "treadmarks" ? ftx::Milliseconds(150)
                       : workload == "postgres"   ? ftx::Milliseconds(20)
                                                  : ftx::Seconds(4.0);
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + when);
      });
  EXPECT_TRUE(check.completed) << workload << "/" << protocol << ": " << check.diagnostic;
  EXPECT_TRUE(check.consistent) << workload << "/" << protocol << ": " << check.diagnostic;
  EXPECT_GE(check.rollbacks, 1) << workload << "/" << protocol;
}

INSTANTIATE_TEST_SUITE_P(
    DeterministicWorkloads, StopFailureMatrix,
    ::testing::Combine(::testing::Values("nvi", "magic", "postgres"),
                       ::testing::Values("cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"),
                       ::testing::Values(ftx::StoreKind::kRio, ftx::StoreKind::kDisk)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                         (std::get<2>(info.param) == ftx::StoreKind::kRio ? "_rio" : "_disk");
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// TreadMarks: fail each peer in turn (its visible stream comes from
// process 0's deterministic progress reports).
class TreadMarksFailure : public ::testing::TestWithParam<int> {};

TEST_P(TreadMarksFailure, AnyPeerFailureRecovers) {
  int victim = GetParam();
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.protocol = "cpvs";
  spec.scale = 5;
  spec.seed = 23;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleStopFailure(victim, ftx::TimePoint() + ftx::Milliseconds(180));
      });
  EXPECT_TRUE(check.completed) << "victim " << victim << ": " << check.diagnostic;
  EXPECT_TRUE(check.consistent) << "victim " << victim << ": " << check.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Victims, TreadMarksFailure, ::testing::Range(0, 4));

TEST(Integration, TreadMarksTwoPcSurvivesFailure) {
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.protocol = "cpv-2pc";
  spec.scale = 5;
  spec.seed = 29;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleStopFailure(2, ftx::TimePoint() + ftx::Milliseconds(200));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(Integration, WholeMachineStopFailureRecovers) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.protocol = "cpvs";
  spec.scale = 150;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleOsStopFailure(ftx::TimePoint() + ftx::Seconds(5.0),
                                          /*reboot_delay=*/ftx::Seconds(20.0));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(Integration, RepeatedFailuresOfDistributedRun) {
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.protocol = "cbndvs";
  spec.scale = 5;
  spec.seed = 31;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleStopFailure(1, ftx::TimePoint() + ftx::Milliseconds(100));
        computation.ScheduleStopFailure(3, ftx::TimePoint() + ftx::Milliseconds(400));
        computation.ScheduleStopFailure(1, ftx::TimePoint() + ftx::Milliseconds(800));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(Integration, XpilotSurvivesServerFailure) {
  // xpilot's output is timing-dependent, so no strict equivalence check —
  // the run must complete and keep rendering frames after recovery.
  ftx::RunSpec spec;
  spec.workload = "xpilot";
  spec.protocol = "cbndvs";
  spec.scale = 120;
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(3.0));
  auto result = computation->Run();
  EXPECT_TRUE(result.all_done);
  EXPECT_GE(result.total_rollbacks, 1);
}

TEST(Integration, SaveWorkHoldsAcrossWorkloadsFailureFree) {
  // The runtime's event discipline satisfies the Save-work checker on real
  // application traces (small scales keep the exhaustive check fast).
  for (const char* workload : {"nvi", "magic", "postgres"}) {
    for (const char* protocol : {"cand", "cpvs", "cbndvs", "cbndvs-log"}) {
      ftx::RunSpec spec;
      spec.workload = workload;
      spec.protocol = protocol;
      spec.scale = 25;
      auto computation = ftx::BuildComputation(spec);
      auto result = computation->Run();
      ASSERT_TRUE(result.all_done) << workload << "/" << protocol;
      ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(computation->trace());
      EXPECT_TRUE(report.ok()) << workload << "/" << protocol << ": "
                               << report.violations.size() << " violations";
    }
  }
}

TEST(Integration, SaveWorkHoldsOnDistributedTraces) {
  for (const char* protocol : {"cpvs", "cbndvs", "cpv-2pc", "cbndv-2pc"}) {
    ftx::RunSpec spec;
    spec.workload = "treadmarks";
    spec.protocol = protocol;
    spec.scale = 2;
    auto computation = ftx::BuildComputation(spec);
    auto result = computation->Run();
    ASSERT_TRUE(result.all_done) << protocol;
    ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(computation->trace());
    EXPECT_TRUE(report.ok()) << protocol << ": " << report.violations.size() << " violations";
  }
}

TEST(Integration, FailureNearEndOfRunStillCompletes) {
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.protocol = "cbndvs";
  spec.scale = 200;
  auto baseline = ftx::RunExperiment([&] {
    ftx::RunSpec s = spec;
    s.mode = ftx_dc::RuntimeMode::kBaseline;
    return s;
  }());
  // Fail very close to the end (output nearly complete).
  ftx::Duration near_end = baseline.elapsed - ftx::Microseconds(500);
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [&](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + near_end);
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

}  // namespace
