// Tests for the Save-work and Lose-work invariant checkers — the paper's
// two theorems, exercised on hand-built executions including the paper's own
// figures (coin flip, Fig. 2 orphan, Fig. 9 conflict).

#include <gtest/gtest.h>

#include "src/statemachine/invariants.h"
#include "src/statemachine/trace.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::EventRef;
using ftx_sm::Trace;

// --- Save-work ---

TEST(SaveWork, UncoveredNdBeforeVisibleViolates) {
  // The Fig. 1 coin flip: an ND event precedes a visible with no commit.
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd, -1, false, "flip");
  trace.Append(0, EventKind::kVisible, -1, false, "heads");
  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(trace);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_TRUE(report.violations[0].visible_rule);
  EXPECT_EQ(report.CountVisibleRule(), 1);
  EXPECT_EQ(report.CountOrphanRule(), 0);
}

TEST(SaveWork, CommitBetweenNdAndVisibleSatisfies) {
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd);
  trace.Append(0, EventKind::kCommit);
  trace.Append(0, EventKind::kVisible);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, CommitBeforeNdDoesNotCover) {
  Trace trace(1);
  trace.Append(0, EventKind::kCommit);
  trace.Append(0, EventKind::kTransientNd);
  trace.Append(0, EventKind::kVisible);
  EXPECT_FALSE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, LoggedNdNeedsNoCommit) {
  // Logging renders the event deterministic (§2.4).
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd, -1, /*logged=*/true);
  trace.Append(0, EventKind::kVisible);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, FixedNdAlsoRequiresCommit) {
  // Save-work treats *all* ND classes conservatively, fixed included.
  Trace trace(1);
  trace.Append(0, EventKind::kFixedNd, -1, false, "user-input");
  trace.Append(0, EventKind::kVisible);
  EXPECT_FALSE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, NdWithNoDownstreamVisibleIsFine) {
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd);
  trace.Append(0, EventKind::kInternal);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, VisibleBeforeNdIsFine) {
  Trace trace(1);
  trace.Append(0, EventKind::kVisible);
  trace.Append(0, EventKind::kTransientNd);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, CrossProcessNdRequiresSenderCommit) {
  // B's ND flows to A via a message; A executes a visible. B must have
  // committed its ND with a commit that happens-before A's visible.
  Trace trace(2);
  trace.Append(1, EventKind::kTransientNd);  // B's ND
  trace.Append(1, EventKind::kSend, 1);
  trace.Append(0, EventKind::kReceive, 1);
  // A commits (covers its own receive) then outputs.
  trace.Append(0, EventKind::kCommit);
  trace.Append(0, EventKind::kVisible);
  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(trace);
  // Every violation must point at B's uncovered ND (A's receive is covered
  // by A's commit); one violation is reported per downstream event it
  // reaches (A's commit and A's visible).
  ASSERT_FALSE(report.violations.empty());
  for (const auto& violation : report.violations) {
    EXPECT_EQ(violation.nd_event.process, 1);
    EXPECT_EQ(violation.nd_event.index, 0);
  }
}

TEST(SaveWork, CrossProcessCoveredBySenderCommitBeforeSend) {
  Trace trace(2);
  trace.Append(1, EventKind::kTransientNd);
  trace.Append(1, EventKind::kCommit);  // CPVS-style commit before send
  trace.Append(1, EventKind::kSend, 1);
  trace.Append(0, EventKind::kReceive, 1);
  trace.Append(0, EventKind::kCommit);
  trace.Append(0, EventKind::kVisible);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, OrphanRuleNdBeforeRemoteCommit) {
  // Fig. 2: B executes ND, sends to A, A commits — a dependence on B's
  // uncommitted ND is now committed: the Save-work-orphan rule flags B's ND.
  Trace trace(2);
  trace.Append(1, EventKind::kTransientNd);  // B's ND (B is process 1)
  trace.Append(1, EventKind::kSend, 1);
  trace.Append(0, EventKind::kReceive, 1);   // A receives
  trace.Append(0, EventKind::kCommit);       // A commits the dependence

  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(trace);
  bool found_orphan_rule = false;
  for (const auto& violation : report.violations) {
    if (!violation.visible_rule && violation.nd_event.process == 1) {
      found_orphan_rule = true;
    }
  }
  EXPECT_TRUE(found_orphan_rule);
  EXPECT_GT(report.CountOrphanRule(), 0);
}

TEST(SaveWork, TwoPhaseCommitShapeSatisfies) {
  // The 2PC round as the runtime records it: coordination messages create
  // the happens-before edges that let remote commits cover remote ND.
  Trace trace(2);
  trace.Append(1, EventKind::kTransientNd);  // B has ND
  trace.Append(1, EventKind::kSend, 1);      // app message to A
  trace.Append(0, EventKind::kReceive, 1);
  // A wants a visible: initiates 2PC.
  trace.Append(0, EventKind::kSend, 100);    // prepare -> B
  trace.Append(1, EventKind::kReceive, 100);
  trace.Append(1, EventKind::kCommit, -1, false, "", /*atomic_group=*/1);  // B commits
  trace.Append(1, EventKind::kSend, 101);    // ack -> A
  trace.Append(0, EventKind::kReceive, 101);
  trace.Append(0, EventKind::kCommit, -1, false, "", /*atomic_group=*/1);  // A commits
  trace.Append(0, EventKind::kVisible);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWork, ViolationToStringIsInformative) {
  Trace trace2(1);
  trace2.Append(0, EventKind::kTransientNd);
  trace2.Append(0, EventKind::kVisible);
  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(trace2);
  ASSERT_FALSE(report.ok());
  std::string text = report.violations[0].ToString(trace2);
  EXPECT_NE(text.find("transient_nd"), std::string::npos);
  EXPECT_NE(text.find("visible"), std::string::npos);
}

// --- Lose-work ---

TEST(LoseWork, NotApplicableWithoutCrash) {
  Trace trace(1);
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  ftx_sm::LoseWorkResult result = ftx_sm::CheckLoseWorkOperational(trace, 0);
  EXPECT_FALSE(result.applicable);
}

TEST(LoseWork, CommitBetweenActivationAndCrashViolates) {
  // Fig. 9's timeline: ND -> activation -> commit -> crash.
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd);
  EventRef activation = trace.Append(0, EventKind::kInternal, -1, false, "fault");
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kCommit);
  trace.Append(0, EventKind::kCrash);

  ftx_sm::LoseWorkResult result = ftx_sm::CheckLoseWorkOperational(trace, 0);
  ASSERT_TRUE(result.applicable);
  EXPECT_TRUE(result.violated);
  ASSERT_TRUE(result.violating_commit.has_value());
  EXPECT_EQ(result.violating_commit->index, 2);
}

TEST(LoseWork, NoCommitInWindowUpholds) {
  Trace trace(1);
  trace.Append(0, EventKind::kCommit);  // before activation: fine
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kInternal);
  trace.Append(0, EventKind::kCrash);
  ftx_sm::LoseWorkResult result = ftx_sm::CheckLoseWorkOperational(trace, 0);
  ASSERT_TRUE(result.applicable);
  EXPECT_FALSE(result.violated);
}

TEST(LoseWork, FullCheckExtendsToLastTransientNd) {
  // A commit after the last transient ND but before activation violates the
  // *full* dangerous path even though the operational window is clean.
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd);  // path start
  trace.Append(0, EventKind::kCommit);       // ON the dangerous path
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kCrash);

  EXPECT_FALSE(ftx_sm::CheckLoseWorkOperational(trace, 0).violated);
  ftx_sm::LoseWorkResult full = ftx_sm::CheckLoseWorkFull(trace, 0);
  EXPECT_TRUE(full.violated);
}

TEST(LoseWork, BohrbugAlwaysViolatesFullCheck) {
  // No transient ND before the activation: the dangerous path reaches the
  // initial (always committed) state — §4.1's Bohrbug case.
  Trace trace(1);
  trace.Append(0, EventKind::kInternal);
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kCrash);

  ftx_sm::LoseWorkResult full = ftx_sm::CheckLoseWorkFull(trace, 0);
  ASSERT_TRUE(full.applicable);
  EXPECT_TRUE(full.violated);
  EXPECT_EQ(full.dangerous_path_start, -1);
}

TEST(LoseWork, LoggedNdDoesNotStopDangerousPathWalk) {
  // A logged ND event replays deterministically, so it cannot divert
  // execution off the dangerous path; the walk must continue past it.
  Trace trace(1);
  trace.Append(0, EventKind::kInternal);
  trace.Append(0, EventKind::kTransientNd, -1, /*logged=*/true);
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kCrash);

  ftx_sm::LoseWorkResult full = ftx_sm::CheckLoseWorkFull(trace, 0);
  EXPECT_TRUE(full.violated);           // reaches the initial state
  EXPECT_EQ(full.dangerous_path_start, -1);
}

TEST(LoseWork, FixedNdDoesNotStopDangerousPathWalk) {
  // Fixed ND (e.g. user input) cannot be relied on to change after a
  // failure, so it does not end the dangerous path either.
  Trace trace(1);
  trace.Append(0, EventKind::kFixedNd);
  EventRef activation = trace.Append(0, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(0, EventKind::kCrash);

  ftx_sm::LoseWorkResult full = ftx_sm::CheckLoseWorkFull(trace, 0);
  EXPECT_TRUE(full.violated);
  EXPECT_EQ(full.dangerous_path_start, -1);
}

TEST(LoseWork, SaveWorkLoseWorkConflictScenario) {
  // Fig. 9 end-to-end: transient ND -> activation -> visible -> crash.
  // Save-work REQUIRES a commit between the ND and the visible; Lose-work
  // FORBIDS any commit on that same span. Both cannot hold.
  Trace with_commit(1);
  with_commit.Append(0, EventKind::kTransientNd);
  auto activation = with_commit.Append(0, EventKind::kInternal);
  with_commit.MarkFaultActivation(activation);
  with_commit.Append(0, EventKind::kCommit);
  with_commit.Append(0, EventKind::kVisible);
  with_commit.Append(0, EventKind::kCrash);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(with_commit).ok());
  EXPECT_TRUE(ftx_sm::CheckLoseWorkOperational(with_commit, 0).violated);

  Trace without_commit(1);
  without_commit.Append(0, EventKind::kTransientNd);
  activation = without_commit.Append(0, EventKind::kInternal);
  without_commit.MarkFaultActivation(activation);
  without_commit.Append(0, EventKind::kVisible);
  without_commit.Append(0, EventKind::kCrash);
  EXPECT_FALSE(ftx_sm::CheckSaveWork(without_commit).ok());
  EXPECT_FALSE(ftx_sm::CheckLoseWorkFull(without_commit, 0).violated);
}

}  // namespace
