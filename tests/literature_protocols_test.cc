// End-to-end tests for the literature protocols (SBL, Targon/32,
// Hypervisor, Optimistic Logging, Coordinated Checkpointing): stop-failure
// recovery with consistent output on real workloads, commit-count
// relationships along the protocol-space axes, and Fig. 4's recovery-time
// trend (protocols further out the x axis replay longer).

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/statemachine/invariants.h"

namespace {

class LiteratureProtocolRecovery : public ::testing::TestWithParam<std::string> {};

TEST_P(LiteratureProtocolRecovery, NviStopFailureRecoversConsistently) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 150;
  spec.protocol = GetParam();
  spec.seed = 77;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(7.0));
      });
  EXPECT_TRUE(check.completed) << GetParam() << ": " << check.diagnostic;
  EXPECT_TRUE(check.consistent) << GetParam() << ": " << check.diagnostic;
  EXPECT_GE(check.rollbacks, 1);
}

TEST_P(LiteratureProtocolRecovery, PostgresStopFailureRecoversConsistently) {
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 250;
  spec.protocol = GetParam();
  spec.seed = 78;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(40));
      });
  EXPECT_TRUE(check.completed) << GetParam() << ": " << check.diagnostic;
  EXPECT_TRUE(check.consistent) << GetParam() << ": " << check.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Names, LiteratureProtocolRecovery,
                         ::testing::Values("sbl", "targon32", "hypervisor", "optimistic-log",
                                           "coordinated-ckpt", "fbl", "manetho"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(LiteratureProtocols, HypervisorNeverCommitsAfterInit) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 200;
  spec.protocol = "hypervisor";
  ftx::RunOutput out = ftx::RunExperiment(spec);
  ASSERT_TRUE(out.result.all_done);
  EXPECT_EQ(out.checkpoints, 1);  // checkpoint #0 only
  EXPECT_GT(out.result.per_process[0].logged_events, 150);
}

TEST(LiteratureProtocols, CommitCountsFallAlongTheNdAxis) {
  // Fig. 3's x axis on the magic workload: cand > sbl > targon32 >
  // hypervisor (progressively more non-determinism converted).
  auto commits = [](const char* protocol) {
    ftx::RunSpec spec;
    spec.workload = "magic";
    spec.scale = 50;
    spec.seed = 5;
    spec.protocol = protocol;
    return ftx::RunExperiment(spec).checkpoints;
  };
  int64_t cand = commits("cand");
  int64_t sbl = commits("sbl");
  int64_t targon = commits("targon32");
  int64_t hypervisor = commits("hypervisor");
  EXPECT_GE(cand, sbl);
  EXPECT_GT(sbl, targon);
  EXPECT_GE(targon, hypervisor);
  EXPECT_EQ(hypervisor, 1);
}

TEST(LiteratureProtocols, RecoveryTimeGrowsAlongTheNdAxis) {
  // Fig. 4: protocols further right replay more during recovery. Hypervisor
  // rolls back to checkpoint #0 and replays the entire history; CPVS rolls
  // back at most one query. The recovery cost is the run-time EXPANSION a
  // failure adds under each protocol (isolating replay from the protocols'
  // different failure-free overheads).
  auto failure_expansion = [](const char* protocol) {
    ftx::RunSpec spec;
    spec.workload = "postgres";
    spec.scale = 400;
    spec.seed = 9;
    spec.protocol = protocol;
    auto clean = ftx::RunExperiment(spec);
    EXPECT_TRUE(clean.result.all_done) << protocol;

    auto computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(120),
                                     /*recovery_delay=*/ftx::Milliseconds(1));
    auto failed = computation->Run();
    EXPECT_TRUE(failed.all_done) << protocol;
    return (failed.end_time - ftx::TimePoint()) - clean.elapsed;
  };
  ftx::Duration cpvs_expansion = failure_expansion("cpvs");
  ftx::Duration hypervisor_expansion = failure_expansion("hypervisor");
  EXPECT_GT(hypervisor_expansion.nanos(), cpvs_expansion.nanos());
  // Hypervisor replays ~120 ms of history; CPVS replays one query (<1 ms).
  EXPECT_GT(hypervisor_expansion.millis(), 50);
}

TEST(LiteratureProtocols, OptimisticLogLosesUnflushedTail) {
  // After a crash, async log records that never reached stable storage are
  // gone: the run must still complete and stay output-consistent (the lost
  // events simply reexecute live; Save-work guaranteed no visible depended
  // on them).
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 120;
  spec.protocol = "optimistic-log";
  spec.seed = 91;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(5.0));
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(9.0));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(LiteratureProtocols, CoordinatedCkptNarrowsParticipation) {
  // On TreadMarks, coordinated checkpointing commits the communication
  // closure (everyone talks to everyone across an iteration, so counts are
  // close to cpv-2pc), and the run survives a peer failure.
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.scale = 4;
  spec.protocol = "coordinated-ckpt";
  spec.seed = 12;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(1, ftx::TimePoint() + ftx::Milliseconds(150));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(LiteratureProtocols, SaveWorkHoldsOnDistributedTraces) {
  for (const char* protocol : {"sbl", "targon32", "hypervisor", "optimistic-log",
                               "coordinated-ckpt", "fbl", "manetho"}) {
    ftx::RunSpec spec;
    spec.workload = "treadmarks";
    spec.protocol = protocol;
    spec.scale = 2;
    auto computation = ftx::BuildComputation(spec);
    auto result = computation->Run();
    ASSERT_TRUE(result.all_done) << protocol;
    ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(computation->trace());
    EXPECT_TRUE(report.ok()) << protocol << ": " << report.violations.size() << " violations";
  }
}

}  // namespace
