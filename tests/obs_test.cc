// Tests for the observability layer: Json document model, the metrics
// registry (owned + probe-backed instruments), the simulated-timeline
// tracer and its Chrome trace_event export, the results emitter, and the
// end-to-end guarantees the layer makes about real computations (registry
// never diverges from RuntimeStats; crashed processes leave commit and
// recovery spans on the timeline).

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/computation.h"
#include "src/core/experiment.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/results.h"
#include "src/obs/trace_event.h"

namespace {

using ftx_obs::Json;

TEST(JsonTest, ScalarDumpAndTypes) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-7).Dump(), "-7");
  EXPECT_EQ(Json(std::string("hi")).Dump(), "\"hi\"");
  EXPECT_TRUE(Json(1.5).is_number());
}

TEST(JsonTest, Int64Exactness) {
  // Values above 2^53 must survive Dump -> Parse without double rounding.
  const int64_t big = (int64_t{1} << 60) + 3;
  Json doc = Json::Object();
  doc.Set("big", big);
  Json parsed;
  ASSERT_TRUE(Json::Parse(doc.Dump(), &parsed));
  ASSERT_NE(parsed.Find("big"), nullptr);
  EXPECT_EQ(parsed.Find("big")->integer(), big);
}

TEST(JsonTest, StringEscaping) {
  Json doc = Json::Object();
  doc.Set("s", "a\"b\\c\n\t\x01");
  Json parsed;
  ASSERT_TRUE(Json::Parse(doc.Dump(), &parsed));
  EXPECT_EQ(parsed.Find("s")->str(), "a\"b\\c\n\t\x01");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json doc = Json::Object();
  doc.Set("zebra", 1).Set("alpha", 2).Set("mid", 3);
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[1].first, "alpha");
  EXPECT_EQ(doc.members()[2].first, "mid");
  // Set on an existing key overwrites in place.
  doc.Set("alpha", 9);
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.Find("alpha")->integer(), 9);
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  Json out;
  EXPECT_FALSE(Json::Parse("", &out));
  EXPECT_FALSE(Json::Parse("{", &out));
  EXPECT_FALSE(Json::Parse("[1,]", &out));
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing", &out));
  EXPECT_FALSE(Json::Parse("'single'", &out));
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\":}", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParseRoundTripsNestedDocument) {
  Json doc = Json::Object();
  doc.Set("list", Json::Array().Push(1).Push(2.5).Push("three").Push(Json()));
  doc.Set("nested", Json::Object().Set("ok", true));
  Json parsed;
  ASSERT_TRUE(Json::Parse(doc.Dump(2), &parsed));
  EXPECT_EQ(parsed.Dump(), doc.Dump());
}

TEST(MetricsTest, CounterSemantics) {
  ftx_obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeSemantics) {
  ftx_obs::Gauge g;
  g.Set(10.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  ftx_obs::Histogram h({10, 100, 1000});
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Observe(5);     // bucket 0 (<= 10)
  h.Observe(10);    // bucket 0 (bounds are inclusive upper limits)
  h.Observe(99);    // bucket 1
  h.Observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 5114);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_EQ(h.bucket_counts()[1], 1);
  EXPECT_EQ(h.bucket_counts()[2], 0);
  EXPECT_EQ(h.bucket_counts()[3], 1);
}

TEST(MetricsTest, HistogramQuantileInterpolation) {
  // Bucket-interpolated quantiles, pinned: two observations per bucket of
  // {(-inf,10], (10,100], (100,1000], (1000,inf)} with min=4 and max=4000.
  ftx_obs::Histogram h({10, 100, 1000});
  for (int64_t v : {4, 6, 20, 80, 200, 600, 2000, 4000}) {
    h.Observe(v);
  }
  // p50: rank 4.0 lands at the end of bucket 1, interpolated to its upper
  // bound; p90/p99 land in the overflow bucket, whose upper edge clamps to
  // the observed max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 2800.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 3880.0);
  // The extremes clamp to the true min/max, not the bucket edges.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4000.0);
}

TEST(MetricsTest, HistogramQuantileDegenerateCases) {
  ftx_obs::Histogram empty({10});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  // All observations equal: every quantile is that value (the bucket's
  // nominal [min, bound] range clamps to [7, 7]).
  ftx_obs::Histogram point({10});
  point.Observe(7);
  point.Observe(7);
  point.Observe(7);
  EXPECT_DOUBLE_EQ(point.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(point.Quantile(0.99), 7.0);
}

TEST(MetricsTest, SnapshotJsonCarriesQuantiles) {
  ftx_obs::Registry registry;
  ftx_obs::Histogram* h = registry.GetHistogram("q.latency_ns", {10, 100, 1000});
  for (int64_t v : {4, 6, 20, 80, 200, 600, 2000, 4000}) {
    h->Observe(v);
  }
  Json parsed;
  ASSERT_TRUE(Json::Parse(registry.ToJsonString(), &parsed));
  const Json* hist = parsed.Find("q.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("p50")->number(), h->Quantile(0.5));
  EXPECT_DOUBLE_EQ(hist->Find("p90")->number(), h->Quantile(0.9));
  EXPECT_DOUBLE_EQ(hist->Find("p99")->number(), h->Quantile(0.99));
  // Monotone: min <= p50 <= p90 <= p99 <= max (the JSON validator gates
  // the same ordering on every bench results file).
  EXPECT_LE(static_cast<double>(hist->Find("min")->integer()), hist->Find("p50")->number());
  EXPECT_LE(hist->Find("p50")->number(), hist->Find("p90")->number());
  EXPECT_LE(hist->Find("p90")->number(), hist->Find("p99")->number());
  EXPECT_LE(hist->Find("p99")->number(), static_cast<double>(hist->Find("max")->integer()));
}

TEST(MetricsTest, RegistryGetOrCreateReturnsSameInstrument) {
  ftx_obs::Registry registry;
  ftx_obs::Counter* a = registry.GetCounter("x.count");
  ftx_obs::Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.GetCounter("x.count")->value(), 1);
  EXPECT_TRUE(registry.Contains("x.count"));
  EXPECT_FALSE(registry.Contains("x.other"));
}

TEST(MetricsTest, ProbesAreEvaluatedAtSnapshotTime) {
  ftx_obs::Registry registry;
  int64_t backing = 7;
  registry.RegisterCounterProbe("probe.count", [&backing]() { return backing; });
  EXPECT_EQ(registry.Snapshot().Find("probe.count")->counter, 7);
  backing = 19;  // no re-registration needed: the closure reads live state
  EXPECT_EQ(registry.Snapshot().Find("probe.count")->counter, 19);
}

TEST(MetricsTest, SnapshotTotalCounterAggregatesPerProcessNames) {
  ftx_obs::Registry registry;
  registry.GetCounter("p0.dc.commits")->Add(3);
  registry.GetCounter("p1.dc.commits")->Add(4);
  registry.GetCounter("p1.dc.rollbacks")->Add(100);
  EXPECT_EQ(registry.Snapshot().TotalCounter("dc.commits"), 7);
}

TEST(MetricsTest, SnapshotJsonRoundTrip) {
  ftx_obs::Registry registry;
  registry.GetCounter("a.count")->Add(5);
  registry.GetGauge("b.level")->Set(2.25);
  registry.GetHistogram("c.latency_ns", {100, 1000})->Observe(50);
  registry.GetHistogram("c.latency_ns")->Observe(700);

  Json parsed;
  ASSERT_TRUE(Json::Parse(registry.ToJsonString(), &parsed));
  EXPECT_EQ(parsed.Find("a.count")->integer(), 5);
  EXPECT_DOUBLE_EQ(parsed.Find("b.level")->number(), 2.25);
  const Json* hist = parsed.Find("c.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->integer(), 2);
  EXPECT_EQ(hist->Find("sum")->integer(), 750);
  EXPECT_EQ(hist->Find("min")->integer(), 50);
  EXPECT_EQ(hist->Find("max")->integer(), 700);
  ASSERT_EQ(hist->Find("buckets")->size(), 3u);
  EXPECT_EQ(hist->Find("buckets")->at(0).integer(), 1);
  EXPECT_EQ(hist->Find("buckets")->at(1).integer(), 1);
}

// --- tracer ---

ftx::TimePoint AtNs(int64_t ns) { return ftx::TimePoint() + ftx::Nanoseconds(ns); }

// Asserts the Chrome export invariants every consumer relies on: the
// document parses, timestamps are monotone in array order, and B/E events
// are balanced (never negative depth, zero depth at the end) per
// (pid, tid) track.
void CheckChromeTraceWellFormed(const ftx_obs::Tracer& tracer) {
  Json doc;
  ASSERT_TRUE(Json::Parse(tracer.ToChromeTraceJson(), &doc));
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  double last_ts = -1;
  std::map<std::pair<int64_t, int64_t>, int> depth;
  for (const Json& event : events->items()) {
    const std::string& phase = event.Find("ph")->str();
    if (phase == "M") {
      continue;  // metadata events carry no timestamp ordering obligation
    }
    double ts = event.Find("ts")->number();
    EXPECT_GE(ts, last_ts) << "timestamps must be sorted for Perfetto";
    last_ts = ts;
    auto track = std::make_pair(event.Find("pid")->integer(), event.Find("tid")->integer());
    if (phase == "B") {
      ++depth[track];
    } else if (phase == "E") {
      --depth[track];
      EXPECT_GE(depth[track], 0) << "E without matching B on a track";
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E on pid=" << track.first << " tid=" << track.second;
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  ftx_obs::Tracer tracer;
  tracer.Span(0, ftx_obs::TraceLane::kStep, "app", "step", AtNs(0), AtNs(10));
  tracer.Instant(0, ftx_obs::TraceLane::kRecovery, "dc", "crash", AtNs(5));
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, SpanAndInstantExport) {
  ftx_obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.Span(0, ftx_obs::TraceLane::kStep, "app", "step", AtNs(1000), AtNs(3000));
  tracer.Span(1, ftx_obs::TraceLane::kStorage, "dc", "commit", AtNs(2000), AtNs(2000));
  tracer.Instant(0, ftx_obs::TraceLane::kRecovery, "dc", "crash", AtNs(2500));
  CheckChromeTraceWellFormed(tracer);

  Json doc;
  ASSERT_TRUE(Json::Parse(tracer.ToChromeTraceJson(), &doc));
  int begins = 0, ends = 0, instants = 0;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    const std::string& phase = event.Find("ph")->str();
    begins += phase == "B";
    ends += phase == "E";
    instants += phase == "i";
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
}

TEST(TracerTest, OverlappingSpansOnOneLaneStayBalanced) {
  // The runtime computes span times from caller-supplied costs; if two
  // overlap on the same (pid, lane) the exporter must repair them so the
  // B/E stream stays balanced rather than emitting interleaved pairs.
  ftx_obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.Span(0, ftx_obs::TraceLane::kStorage, "dc", "commit", AtNs(100), AtNs(300));
  tracer.Span(0, ftx_obs::TraceLane::kStorage, "dc", "commit", AtNs(200), AtNs(400));
  tracer.Span(0, ftx_obs::TraceLane::kStorage, "dc", "flush", AtNs(250), AtNs(260));
  CheckChromeTraceWellFormed(tracer);
}

TEST(TracerTest, LaneMetadataNamesEveryTrackInUse) {
  ftx_obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.Span(2, ftx_obs::TraceLane::kCoordination, "dc", "2pc-round(3)", AtNs(0), AtNs(50));
  Json doc;
  ASSERT_TRUE(Json::Parse(tracer.ToChromeTraceJson(), &doc));
  bool found_thread_name = false;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    if (event.Find("ph")->str() == "M" && event.Find("name")->str() == "thread_name") {
      found_thread_name = true;
      EXPECT_EQ(event.Find("pid")->integer(), 2);
    }
  }
  EXPECT_TRUE(found_thread_name);
}

TEST(TracerTest, FlowEventsPairOnCategoryNameAndId) {
  ftx_obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.FlowStart(0, ftx_obs::TraceLane::kStep, "causal", "msg", AtNs(100), /*flow_id=*/7);
  tracer.FlowFinish(1, ftx_obs::TraceLane::kStep, "causal", "msg", AtNs(300), /*flow_id=*/7);
  CheckChromeTraceWellFormed(tracer);

  Json doc;
  ASSERT_TRUE(Json::Parse(tracer.ToChromeTraceJson(), &doc));
  const Json* start = nullptr;
  const Json* finish = nullptr;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    const std::string& phase = event.Find("ph")->str();
    if (phase == "s") {
      start = &event;
    } else if (phase == "f") {
      finish = &event;
    }
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  // The two ends pair on (cat, name, id)...
  EXPECT_EQ(start->Find("cat")->str(), finish->Find("cat")->str());
  EXPECT_EQ(start->Find("name")->str(), finish->Find("name")->str());
  EXPECT_EQ(start->Find("id")->integer(), 7);
  EXPECT_EQ(finish->Find("id")->integer(), 7);
  // ...the finish binds to its enclosing slice, and the arrow points
  // forward in time across tracks.
  EXPECT_EQ(finish->Find("bp")->str(), "e");
  EXPECT_LT(start->Find("ts")->number(), finish->Find("ts")->number());
  EXPECT_NE(start->Find("pid")->integer(), finish->Find("pid")->integer());
}

TEST(TracerTest, CounterSampleExportsArgsSeries) {
  ftx_obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.CounterSample(2, "dc", "commit cost (ns)", AtNs(500),
                       {{"fixed", 40.0}, {"persist", 160.0}});
  CheckChromeTraceWellFormed(tracer);

  Json doc;
  ASSERT_TRUE(Json::Parse(tracer.ToChromeTraceJson(), &doc));
  const Json* counter = nullptr;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    if (event.Find("ph")->str() == "C") {
      counter = &event;
    }
  }
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("name")->str(), "commit cost (ns)");
  const Json* args = counter->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("fixed")->number(), 40.0);
  EXPECT_DOUBLE_EQ(args->Find("persist")->number(), 160.0);
}

TEST(TracerTest, DisabledTracerIgnoresFlowsAndCounters) {
  ftx_obs::Tracer tracer;
  tracer.FlowStart(0, ftx_obs::TraceLane::kStep, "causal", "msg", AtNs(0), 1);
  tracer.FlowFinish(0, ftx_obs::TraceLane::kStep, "causal", "msg", AtNs(1), 1);
  tracer.CounterSample(0, "dc", "x", AtNs(2), {{"a", 1.0}});
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, AuditedTracedRunEmitsCausalFlowsAndCostTracks) {
  // End-to-end: an audited run with tracing on exports send->receive and
  // nd->commit flow arrows plus per-commit cost-attribution counters, and
  // the whole document still satisfies every Chrome-export invariant.
  ftx::RunSpec spec;
  spec.workload = "treadmarks";
  spec.protocol = "cpvs";
  spec.scale = 3;
  spec.audit = true;
  auto computation = ftx::BuildComputation(spec);
  computation->tracer().SetEnabled(true);
  auto result = computation->Run();
  ASSERT_TRUE(result.all_done);
  CheckChromeTraceWellFormed(computation->tracer());

  Json doc;
  ASSERT_TRUE(Json::Parse(computation->tracer().ToChromeTraceJson(), &doc));
  int msg_starts = 0, msg_finishes = 0, nd_flows = 0, cost_samples = 0;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    const std::string& phase = event.Find("ph")->str();
    const std::string& name = event.Find("name")->str();
    if (phase == "s" && name == "msg") {
      ++msg_starts;
    } else if (phase == "f" && name == "msg") {
      ++msg_finishes;
      EXPECT_EQ(event.Find("bp")->str(), "e");
    } else if ((phase == "s" || phase == "f") && name == "nd->commit") {
      ++nd_flows;
    } else if (phase == "C" && name == "commit cost (ns)") {
      ++cost_samples;
      EXPECT_NE(event.Find("args")->Find("fixed"), nullptr);
      EXPECT_NE(event.Find("args")->Find("persist"), nullptr);
    }
  }
  EXPECT_GT(msg_starts, 0);
  // Every received message's arrow has both ends (sends whose delivery was
  // still in flight at the end may leave unpaired starts).
  EXPECT_GT(msg_finishes, 0);
  EXPECT_LE(msg_finishes, msg_starts);
  EXPECT_GT(nd_flows, 0);
  EXPECT_GT(cost_samples, 0);
}

// --- results emitter ---

TEST(ResultsTest, EnvelopeShape) {
  ftx_obs::ResultsFile results("unit_test_bench");
  results.SetFullScale(true);
  results.SetMeta("seed", 7);
  results.AddRow(Json::Object().Set("workload", "nvi").Set("checkpoints", 12));

  ftx_obs::Registry registry;
  registry.GetCounter("p0.dc.commits")->Add(12);
  results.AttachMetricsToLastRow(registry.Snapshot());

  Json parsed;
  ASSERT_TRUE(Json::Parse(results.ToJson().Dump(2), &parsed));
  EXPECT_EQ(parsed.Find("schema")->str(), ftx_obs::kResultsSchemaName);
  EXPECT_EQ(parsed.Find("schema_version")->integer(), ftx_obs::kResultsSchemaVersion);
  EXPECT_EQ(parsed.Find("bench")->str(), "unit_test_bench");
  EXPECT_TRUE(parsed.Find("full_scale")->boolean());
  EXPECT_EQ(parsed.Find("meta")->Find("seed")->integer(), 7);
  ASSERT_EQ(parsed.Find("rows")->size(), 1u);
  const Json& row = parsed.Find("rows")->at(0);
  EXPECT_EQ(row.Find("checkpoints")->integer(), 12);
  EXPECT_EQ(row.Find("metrics")->Find("p0.dc.commits")->integer(), 12);
}

// --- integration with real computations ---

TEST(ObsIntegrationTest, RegistryNeverDivergesFromRuntimeStats) {
  // The per-process probes read the same RuntimeStats memory stats()
  // reports, so after a full run (including a crash and recovery) every
  // probed field must match the struct exactly.
  ftx::RunSpec spec;
  spec.workload = "magic";
  spec.scale = 80;
  spec.seed = 5;
  spec.protocol = "cpvs";
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(20),
                                   ftx::Milliseconds(1));
  ftx::ComputationResult result = computation->Run();
  ASSERT_TRUE(result.all_done);

  ftx_obs::MetricsSnapshot snapshot = computation->metrics().Snapshot();
  for (int pid = 0; pid < computation->num_processes(); ++pid) {
    const ftx_dc::RuntimeStats& stats = result.per_process[static_cast<size_t>(pid)];
    const std::string p = "p" + std::to_string(pid) + ".";
    auto probed = [&](const std::string& name) {
      const ftx_obs::MetricValue* value = snapshot.Find(p + name);
      EXPECT_NE(value, nullptr) << p + name;
      return value == nullptr ? int64_t{-1} : value->counter;
    };
    EXPECT_EQ(probed("dc.commits"), stats.commits);
    EXPECT_EQ(probed("dc.coordinated_commits"), stats.coordinated_commits);
    EXPECT_EQ(probed("dc.commit_ns"), stats.commit_time.nanos());
    EXPECT_EQ(probed("dc.pages_committed"), stats.pages_committed);
    EXPECT_EQ(probed("dc.bytes_persisted"), stats.bytes_persisted);
    EXPECT_EQ(probed("dc.events"), stats.events);
    EXPECT_EQ(probed("dc.nd_events"), stats.nd_events);
    EXPECT_EQ(probed("dc.visible_events"), stats.visible_events);
    EXPECT_EQ(probed("dc.sends"), stats.sends);
    EXPECT_EQ(probed("dc.receives"), stats.receives);
    EXPECT_EQ(probed("dc.logged_events"), stats.logged_events);
    EXPECT_EQ(probed("dc.rollbacks"), stats.rollbacks);
    EXPECT_EQ(probed("dc.recovery_ns"), stats.recovery_time.nanos());
  }

  // Computation-wide instruments exist and saw traffic.
  EXPECT_GT(snapshot.Find("sim.events_executed")->counter, 0);
  EXPECT_GT(snapshot.Find("kernel.syscalls")->counter, 0);
  EXPECT_EQ(snapshot.TotalCounter("dc.rollbacks"), result.total_rollbacks);
  EXPECT_EQ(snapshot.TotalCounter("dc.commits"), result.total_commits);
}

TEST(ObsIntegrationTest, CrashedProcessLeavesCommitAndRecoverySpans) {
  // Acceptance criterion: a recoverable run with a mid-run failure exports
  // a Chrome trace containing at least one commit span and at least one
  // recovery span for every crashed process.
  ftx::RunSpec spec;
  spec.workload = "postgres";
  spec.scale = 200;
  spec.seed = 3;
  spec.protocol = "cpvs";
  auto computation = ftx::BuildComputation(spec);
  computation->tracer().SetEnabled(true);
  const int kCrashedPid = 0;
  computation->ScheduleStopFailure(kCrashedPid, ftx::TimePoint() + ftx::Milliseconds(30),
                                   ftx::Milliseconds(1));
  ftx::ComputationResult result = computation->Run();
  ASSERT_TRUE(result.all_done);

  CheckChromeTraceWellFormed(computation->tracer());

  Json doc;
  ASSERT_TRUE(Json::Parse(computation->tracer().ToChromeTraceJson(), &doc));
  int commit_spans = 0;
  int recovery_spans = 0;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    if (event.Find("ph")->str() != "B" || event.Find("pid")->integer() != kCrashedPid) {
      continue;
    }
    const std::string& name = event.Find("name")->str();
    commit_spans += name.rfind("commit", 0) == 0;
    recovery_spans += name == "recover" || name == "restart";
  }
  EXPECT_GE(commit_spans, 1);
  EXPECT_GE(recovery_spans, 1);
}

TEST(ObsIntegrationTest, BaselineModeRegistersMetricsButNoSpans) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 30;
  spec.seed = 2;
  spec.mode = ftx_dc::RuntimeMode::kBaseline;
  auto computation = ftx::BuildComputation(spec);
  computation->tracer().SetEnabled(true);
  ftx::ComputationResult result = computation->Run();
  ASSERT_TRUE(result.all_done);
  ftx_obs::MetricsSnapshot snapshot = computation->metrics().Snapshot();
  EXPECT_EQ(snapshot.TotalCounter("dc.commits"), 0);
  // Per-process probes are registered even in baseline mode (baseline runs
  // skip event accounting, so the values stay zero but the names exist).
  EXPECT_NE(snapshot.Find("p0.dc.events"), nullptr);
  EXPECT_GT(snapshot.Find("sim.events_executed")->counter, 0);
  // Baseline runs never commit or recover; only step spans may appear.
  for (const ftx_obs::TraceEvent& event : computation->tracer().events()) {
    EXPECT_EQ(event.lane, ftx_obs::TraceLane::kStep);
  }
}

TEST(ObsIntegrationTest, RunOutputCarriesMetricsSnapshot) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 30;
  spec.seed = 2;
  spec.protocol = "cand";
  ftx::RunOutput output = ftx::RunExperiment(spec);
  EXPECT_EQ(output.metrics.TotalCounter("dc.commits"), output.checkpoints);
}

}  // namespace
