// Tests for the offline commit-placement analysis: correctness (the
// placement upholds Save-work), irredundancy (no commit removable), exact
// answers on hand-built computations, and the protocol-space floor property
// (offline placement never exceeds what any online protocol paid).

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/common/rng.h"
#include "src/protocol/protocol.h"
#include "src/statemachine/invariants.h"
#include "src/statemachine/optimal_commits.h"
#include "src/statemachine/random_model.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::Trace;

TEST(OfflineCommits, NoNdMeansNoCommits) {
  Trace raw(2);
  raw.Append(0, EventKind::kInternal);
  raw.Append(0, EventKind::kVisible);
  raw.Append(1, EventKind::kVisible);
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, 0);
}

TEST(OfflineCommits, NdWithoutDownstreamVisibleNeedsNoCommit) {
  Trace raw(1);
  raw.Append(0, EventKind::kVisible);
  raw.Append(0, EventKind::kTransientNd);  // nothing visible after it
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, 0);
}

TEST(OfflineCommits, OneCommitCoversManyNdEvents) {
  // Five ND events then one visible: a single commit in between suffices —
  // the floor CAND (5 commits) and CPVS (1) chase.
  Trace raw(1);
  for (int i = 0; i < 5; ++i) {
    raw.Append(0, EventKind::kTransientNd);
  }
  raw.Append(0, EventKind::kVisible);
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, 1);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(ftx_sm::ApplyPlacement(raw, placement)).ok());
}

TEST(OfflineCommits, AlternatingNdVisibleNeedsOneEach) {
  Trace raw(1);
  const int rounds = 4;
  for (int i = 0; i < rounds; ++i) {
    raw.Append(0, EventKind::kTransientNd);
    raw.Append(0, EventKind::kVisible);
  }
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, rounds);
}

TEST(OfflineCommits, LoggedNdNeedsNothing) {
  Trace raw(1);
  raw.Append(0, EventKind::kTransientNd, -1, /*logged=*/true);
  raw.Append(0, EventKind::kVisible);
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, 0);
}

TEST(OfflineCommits, RemoteVisibleConstrainsTheSender) {
  // p1's ND flows to p0's visible: p1 must commit between its ND and its
  // send; p0's receive (also ND) must commit before its visible.
  Trace raw(2);
  raw.Append(1, EventKind::kTransientNd);
  raw.Append(1, EventKind::kSend, 5);
  raw.Append(0, EventKind::kReceive, 5);
  raw.Append(0, EventKind::kVisible);
  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  EXPECT_EQ(placement.total_commits, 2);
  EXPECT_TRUE(placement.Contains(1, 0) || placement.Contains(1, 1));
  EXPECT_TRUE(placement.Contains(0, 0));
}

class OfflineCommitsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OfflineCommitsProperty, PlacementIsValidAndIrredundant) {
  ftx::Rng rng(GetParam());
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 3;
  options.events_per_process = 40;
  Trace raw = ftx_sm::MakeRandomComputation(&rng, options);

  auto placement = ftx_sm::ComputeOfflineCommits(raw);
  Trace applied = ftx_sm::ApplyPlacement(raw, placement);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(applied).ok()) << "seed " << GetParam();

  // Irredundancy was enforced by the pruning pass: removing any single
  // commit must break the invariant.
  for (int p = 0; p < options.num_processes; ++p) {
    auto gaps = placement.commit_after[static_cast<size_t>(p)];
    for (size_t k = 0; k < gaps.size(); ++k) {
      ftx_sm::CommitPlacement reduced = placement;
      auto& reduced_gaps = reduced.commit_after[static_cast<size_t>(p)];
      reduced_gaps.erase(reduced_gaps.begin() + static_cast<int64_t>(k));
      EXPECT_FALSE(ftx_sm::CheckSaveWork(ftx_sm::ApplyPlacement(raw, reduced)).ok())
          << "seed " << GetParam() << ": commit p" << p << " gap " << gaps[k] << " redundant";
    }
  }
}

TEST_P(OfflineCommitsProperty, NeverExceedsOnlineProtocols) {
  // The floor property: with hindsight, the offline placement pays no more
  // than any online Save-work protocol did on the same computation.
  ftx::Rng rng(GetParam() ^ 0x777);
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 3;
  options.events_per_process = 40;
  std::vector<ftx_sm::ScriptedEvent> script = ftx_sm::MakeRandomScript(&rng, options);

  Trace raw(options.num_processes);
  for (const auto& ev : script) {
    raw.Append(ev.process, ev.kind, ev.message_id, ev.logged);
  }
  auto placement = ftx_sm::ComputeOfflineCommits(raw);

  for (const char* protocol_name : {"cand", "cpvs", "cbndvs"}) {
    // Count the protocol's commits on the same script.
    std::vector<std::unique_ptr<ftx_proto::Protocol>> protocols;
    for (int p = 0; p < options.num_processes; ++p) {
      protocols.push_back(ftx_proto::MakeProtocolByName(protocol_name));
    }
    int64_t commits = 0;
    for (const auto& ev : script) {
      ftx_proto::AppEvent app_event = ftx_proto::AppEvent::kInternal;
      switch (ev.kind) {
        case EventKind::kTransientNd:
          app_event = ftx_proto::AppEvent::kTransientNd;
          break;
        case EventKind::kFixedNd:
          app_event = ftx_proto::AppEvent::kFixedNd;
          break;
        case EventKind::kReceive:
          app_event = ftx_proto::AppEvent::kReceive;
          break;
        case EventKind::kSend:
          app_event = ftx_proto::AppEvent::kSend;
          break;
        case EventKind::kVisible:
          app_event = ftx_proto::AppEvent::kVisible;
          break;
        default:
          break;
      }
      auto d = protocols[static_cast<size_t>(ev.process)]->Decide(app_event);
      if (d.commit_before || d.commit_after) {
        ++commits;
        protocols[static_cast<size_t>(ev.process)]->OnCommitted();
      }
    }
    EXPECT_LE(placement.total_commits, commits)
        << protocol_name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineCommitsProperty, ::testing::Range<uint64_t>(1, 16));

}  // namespace
