// Tests for the parallel trial engine (ftx::TrialPool) and its determinism
// contract: --jobs 1 and --jobs N must produce identical results, per-trial
// seeds must be pure functions of (base_seed, trial_index), and the pool
// must survive nested use and throwing trial bodies.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/core/fault_study.h"
#include "src/core/parallel.h"

namespace {

TEST(DeriveTrialSeed, IsDeterministicAndDisperses) {
  EXPECT_EQ(ftx::DeriveTrialSeed(1, 0), ftx::DeriveTrialSeed(1, 0));
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    for (uint64_t trial = 0; trial < 64; ++trial) {
      seeds.insert(ftx::DeriveTrialSeed(base, trial));
    }
  }
  // A stream jump must not collide across nearby bases and indices.
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

TEST(DeriveTrialSeed, DiffersFromLinearSeedScan) {
  // Adjacent trial indices must not produce adjacent RNG states: the whole
  // point of the derivation is decorrelating trials that a linear
  // base+index scheme would put on overlapping xoshiro streams.
  uint64_t a = ftx::DeriveTrialSeed(100, 0);
  uint64_t b = ftx::DeriveTrialSeed(100, 1);
  EXPECT_NE(b - a, 1u);
}

TEST(TrialPool, DefaultJobsIsPositive) { EXPECT_GE(ftx::TrialPool::DefaultJobs(), 1); }

TEST(TrialPool, RunsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 4}) {
    ftx::TrialPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    constexpr int64_t kN = 100;
    std::vector<std::atomic<int>> counts(kN);
    pool.ParallelFor(kN, [&](int64_t i) { counts[static_cast<size_t>(i)]++; });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[static_cast<size_t>(i)].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(TrialPool, ZeroAndNegativeCountsAreNoops) {
  ftx::TrialPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TrialPool, NestedParallelForDoesNotDeadlock) {
  // A bench row that itself shards a fault study: outer and inner loops
  // share one fixed-size pool. The calling thread helps drain its own
  // batch, so this must complete even with a single-thread pool.
  for (int jobs : {1, 2, 4}) {
    ftx::TrialPool pool(jobs);
    std::atomic<int> total{0};
    pool.ParallelFor(8, [&](int64_t) {
      pool.ParallelFor(8, [&](int64_t) { total++; });
    });
    EXPECT_EQ(total.load(), 64) << "jobs=" << jobs;
  }
}

TEST(TrialPool, LowestIndexExceptionWinsAndPoolSurvives) {
  for (int jobs : {1, 4}) {
    ftx::TrialPool pool(jobs);
    std::vector<std::atomic<int>> counts(32);
    auto run = [&] {
      pool.ParallelFor(32, [&](int64_t i) {
        counts[static_cast<size_t>(i)]++;
        if (i == 7 || i == 23) {
          throw std::runtime_error("trial " + std::to_string(i));
        }
      });
    };
    EXPECT_THROW(
        {
          try {
            run();
          } catch (const std::runtime_error& e) {
            // Deterministic choice: the lowest-index exception is rethrown
            // no matter which trial threw first in wall-clock order.
            EXPECT_STREQ(e.what(), "trial 7");
            throw;
          }
        },
        std::runtime_error);
    // Every index still ran (failures don't starve later trials)...
    for (auto& count : counts) {
      EXPECT_EQ(count.load(), 1);
    }
    // ...and the pool remains usable afterwards.
    std::atomic<int> after{0};
    pool.ParallelFor(16, [&](int64_t) { after++; });
    EXPECT_EQ(after.load(), 16);
  }
}

TEST(RunSharded, ResultsAreInTrialOrderAndJobsInvariant) {
  auto trial = [](int64_t i, uint64_t seed) {
    ftx::Rng rng(seed);
    return static_cast<double>(i) + static_cast<double>(rng.NextU64() % 1000) * 1e-3;
  };
  ftx::TrialPool serial(1);
  ftx::TrialPool wide(8);
  std::vector<double> a = ftx::RunSharded(serial, 50, 99, trial);
  std::vector<double> b = ftx::RunSharded(wide, 50, 99, trial);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], static_cast<double>(i));  // slot i holds trial i
    EXPECT_LT(a[i], static_cast<double>(i) + 1.0);
  }
}

TEST(RunCrashingTrials, PoolSizeDoesNotChangeTheAccumulation) {
  // Synthetic attempt: "crashes" on a seed-derived coin so serial and
  // sharded runs must keep exactly the same attempts in the same order.
  auto attempt = [](uint64_t seed) {
    ftx::FaultRunResult result;
    result.crashed = seed % 3 != 0;
    result.violated_lose_work = seed % 5 == 0;
    return result;
  };
  std::vector<ftx::FaultRunResult> serial =
      ftx::RunCrashingTrials(nullptr, 20, 777, 200, attempt);
  ftx::TrialPool pool(8);
  std::vector<ftx::FaultRunResult> sharded =
      ftx::RunCrashingTrials(&pool, 20, 777, 200, attempt);
  ASSERT_EQ(serial.size(), sharded.size());
  ASSERT_EQ(serial.size(), 20u);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].crashed, sharded[i].crashed);
    EXPECT_EQ(serial[i].violated_lose_work, sharded[i].violated_lose_work);
  }
}

TEST(RunCrashingTrials, RespectsMaxAttempts) {
  int attempts = 0;
  auto attempt = [&attempts](uint64_t) {
    ++attempts;
    return ftx::FaultRunResult{};  // never crashes
  };
  std::vector<ftx::FaultRunResult> results =
      ftx::RunCrashingTrials(nullptr, 10, 1, /*max_attempts=*/25, attempt);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(attempts, 25);
}

TEST(FaultStudyParallel, ShardedStudyMatchesSerialStudy) {
  // The end-to-end determinism contract on a real fault study: identical
  // FaultStudyRow for --jobs 1 and --jobs 8.
  ftx::FaultStudySpec spec;
  spec.app = "postgres";
  spec.type = ftx_fault::FaultType::kHeapBitFlip;
  spec.target_crashes = 8;
  spec.seed_base = 1234;
  ftx::FaultStudyRow serial = ftx::RunFaultStudy(spec);

  ftx::TrialPool pool(8);
  spec.pool = &pool;
  ftx::FaultStudyRow sharded = ftx::RunFaultStudy(spec);

  EXPECT_EQ(serial.crashes, sharded.crashes);
  EXPECT_EQ(serial.violations, sharded.violations);
  EXPECT_EQ(serial.failed_recoveries, sharded.failed_recoveries);
  EXPECT_EQ(serial.violation_fraction, sharded.violation_fraction);
  EXPECT_EQ(serial.failed_recovery_fraction, sharded.failed_recovery_fraction);
}

TEST(RegistryConfinement, ParallelTrialsShareNoInstruments) {
  // The ownership rule documented in src/obs/metrics.h, exercised the way
  // the trial engine actually uses registries: each trial builds, runs,
  // snapshots, and destroys a whole Computation (its Registry included) on
  // whichever pool thread picked the trial up; the caller only reads the
  // value-semantic snapshots after the ParallelFor join. Run under
  // -DFTX_SANITIZE=thread this is the regression test that no instrument or
  // probe is shared across trials — TSan flags any cross-thread access the
  // confinement contract forbids.
  constexpr int64_t kTrials = 8;
  auto run_trials = [](ftx::TrialPool* pool) {
    std::vector<std::string> snapshots(kTrials);
    std::vector<int64_t> commits(kTrials);
    auto body = [&](int64_t i) {
      ftx::RunSpec spec;
      spec.workload = "magic";
      spec.scale = 20;
      spec.seed = ftx::DeriveTrialSeed(42, static_cast<uint64_t>(i));
      spec.protocol = "cpvs";
      auto computation = ftx::BuildComputation(spec);
      ftx::ComputationResult result = computation->Run();
      // Snapshot on the thread that ran the trial, before destruction.
      snapshots[static_cast<size_t>(i)] = computation->metrics().ToJsonString();
      commits[static_cast<size_t>(i)] = result.total_commits;
    };
    if (pool != nullptr) {
      pool->ParallelFor(kTrials, body);
    } else {
      for (int64_t i = 0; i < kTrials; ++i) {
        body(i);
      }
    }
    return std::make_pair(snapshots, commits);
  };

  ftx::TrialPool pool(4);
  auto parallel = run_trials(&pool);
  auto serial = run_trials(nullptr);
  // The join is the only synchronization, and it suffices: the merged
  // snapshots are byte-identical to a fully serial run.
  EXPECT_EQ(parallel.first, serial.first);
  EXPECT_EQ(parallel.second, serial.second);
  for (int64_t i = 0; i < kTrials; ++i) {
    EXPECT_GT(parallel.second[static_cast<size_t>(i)], 0) << "trial " << i;
  }
}

TEST(MeasureOverheadParallel, PoolAndSerialRowsAgree) {
  ftx::RunSpec spec;
  spec.workload = "magic";
  spec.scale = 30;
  spec.seed = 5;
  spec.protocol = "cpvs";
  ftx::OverheadRow serial = ftx::MeasureOverhead(spec);
  ftx::TrialPool pool(4);
  ftx::OverheadRow pooled = ftx::MeasureOverhead(spec, &pool);
  EXPECT_EQ(serial.checkpoints, pooled.checkpoints);
  EXPECT_EQ(serial.baseline.nanos(), pooled.baseline.nanos());
  EXPECT_EQ(serial.recoverable.nanos(), pooled.recoverable.nanos());
  EXPECT_EQ(serial.overhead_percent, pooled.overhead_percent);
}

}  // namespace
