// Tests for partial-state commit (§6's "reducing the comprehensiveness of
// the state saved by the recovery system"): volatile segment ranges are
// excluded from commits, recovery zeroes them and calls App::OnRecovered to
// rebuild, and — the Lose-work payoff — corruption confined to a
// recomputable range is never captured by a commit, so recovery succeeds
// where a full-state commit would have preserved the bug.

#include <gtest/gtest.h>

#include "src/core/computation.h"
#include "src/recovery/consistency.h"
#include "src/statemachine/invariants.h"

namespace {

// An app with base data (persisted) and a derived cache (optionally marked
// volatile). Each step appends a value to the base log and refreshes the
// cache entry derived from it; every few steps it verifies the cache.
class CacheApp : public ftx_dc::App {
 public:
  static constexpr int64_t kStateOffset = 0;
  static constexpr int64_t kBaseOffset = 4096;    // base values (always saved)
  static constexpr int64_t kCacheOffset = 65536;  // derived cache
  static constexpr int64_t kCacheSize = 32 * 1024;

  explicit CacheApp(bool cache_is_volatile) : cache_is_volatile_(cache_is_volatile) {}

  std::string_view name() const override { return "cache-app"; }
  size_t SegmentBytes() const override { return 256 * 1024; }
  int64_t HeapBytes() const override { return 0; }

  void Init(ftx_dc::ProcessEnv& env) override {
    env.segment().WriteValue<int64_t>(kStateOffset, 0);  // steps done
    if (cache_is_volatile_) {
      env.segment().MarkVolatile(kCacheOffset, kCacheSize);
    }
  }

  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override {
    std::optional<ftx::Bytes> token = env.ReadUserInput();
    if (!token.has_value()) {
      return {ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    int64_t steps = env.segment().Read<int64_t>(kStateOffset);
    int64_t value = (*token)[0];
    env.segment().WriteValue<int64_t>(kBaseOffset + steps * 8, value);
    // Derived cache entry: value squared (recomputable from base).
    env.segment().WriteValue<int64_t>(kCacheOffset + (steps % 4096) * 8, value * value);
    ++steps;
    env.segment().WriteValue<int64_t>(kStateOffset, steps);

    // Periodic consistency check (every 4th step): a corrupt entry is
    // detected here — possibly several commits after the corruption landed.
    if (steps % 4 != 0) {
      ftx::Bytes quiet;
      ftx::AppendValue(&quiet, steps);
      ftx::AppendValue(&quiet, value);
      env.Print(std::move(quiet));
      return {ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
    }
    for (int64_t i = 0; i < steps && i < 4096; ++i) {
      int64_t base = env.segment().Read<int64_t>(kBaseOffset + i * 8);
      int64_t cached = env.segment().Read<int64_t>(kCacheOffset + (i % 4096) * 8);
      if (cached != base * base) {
        env.Crash("cache-app: derived cache corrupt");
        return {};
      }
    }

    ftx::Bytes line;
    ftx::AppendValue(&line, steps);
    ftx::AppendValue(&line, value);
    env.Print(std::move(line));
    return {ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  void OnRecovered(ftx_dc::ProcessEnv& env) override {
    ++recoveries_;
    if (!cache_is_volatile_) {
      return;
    }
    // Rebuild the derived cache from the (persisted) base data.
    int64_t steps = env.segment().Read<int64_t>(kStateOffset);
    for (int64_t i = 0; i < steps && i < 4096; ++i) {
      int64_t base = env.segment().Read<int64_t>(kBaseOffset + i * 8);
      env.segment().WriteValue<int64_t>(kCacheOffset + (i % 4096) * 8, base * base);
    }
    env.Compute(ftx::Microseconds(50) * (steps > 0 ? steps : 1));
  }

  int recoveries() const { return recoveries_; }

 private:
  bool cache_is_volatile_;
  int recoveries_ = 0;
};

std::vector<ftx::Bytes> Tokens(int n) {
  std::vector<ftx::Bytes> script;
  for (int i = 0; i < n; ++i) {
    script.push_back(ftx::Bytes{static_cast<uint8_t>(1 + (i * 7) % 40)});
  }
  return script;
}

struct CacheHarness {
  explicit CacheHarness(bool volatile_cache, const std::string& protocol = "cpvs",
                        ftx::StoreKind store = ftx::StoreKind::kRio) {
    ftx::ComputationOptions options;
    options.protocol = protocol;
    options.store = store;
    options.recovery_delay = ftx::Milliseconds(1);
    auto owned = std::make_unique<CacheApp>(volatile_cache);
    app = owned.get();
    std::vector<std::unique_ptr<ftx_dc::App>> apps;
    apps.push_back(std::move(owned));
    computation = std::make_unique<ftx::Computation>(options, std::move(apps));
    computation->SetInputScript(0, Tokens(60));
  }
  CacheApp* app;
  std::unique_ptr<ftx::Computation> computation;
};

TEST(PartialCommit, VolatileRangeShrinksCommittedPages) {
  CacheHarness full(/*volatile_cache=*/false);
  full.computation->Run();
  CacheHarness partial(/*volatile_cache=*/true);
  partial.computation->Run();

  int64_t full_pages = full.computation->runtime(0).stats().pages_committed;
  int64_t partial_pages = partial.computation->runtime(0).stats().pages_committed;
  EXPECT_LT(partial_pages, full_pages);
}

TEST(PartialCommit, StopFailureRebuildsTheCache) {
  CacheHarness h(/*volatile_cache=*/true);
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(800),
                                     /*recovery_delay=*/ftx::Milliseconds(1));
  auto result = h.computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_GE(h.app->recoveries(), 1);
  // The app itself validates the cache on every step; completing the run
  // proves OnRecovered rebuilt it correctly.
}

TEST(PartialCommit, DcDiskRecoveryAlsoRebuilds) {
  CacheHarness h(/*volatile_cache=*/true, "cpvs", ftx::StoreKind::kDisk);
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(900),
                                     /*recovery_delay=*/ftx::Milliseconds(1));
  auto result = h.computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_GE(h.app->recoveries(), 1);
}

TEST(PartialCommit, CorruptionInVolatileRangeIsRecoverable) {
  // The §2.6 payoff. Corrupt a cache entry mid-run; the app's consistency
  // check crashes it on the next step — AFTER intermediate commits captured
  // the corruption window.
  auto run_with_corruption = [](bool volatile_cache) {
    CacheHarness h(volatile_cache);
    // At t=500us (after step 0, before step 1) corrupt cache entry 0 — a
    // slot the app has already filled and never rewrites.
    h.computation->sim().ScheduleAt(ftx::TimePoint() + ftx::Microseconds(500), [&h]() {
      h.computation->runtime(0).segment().CorruptBit(CacheApp::kCacheOffset, 3);
    });
    auto result = h.computation->Run();
    return result.all_done && !h.computation->recovery_abandoned(0);
  };

  // Full-state commits capture the corrupt cache: the app crashes, recovery
  // restores the corrupt state, and it crashes again — unrecoverable.
  EXPECT_FALSE(run_with_corruption(/*volatile_cache=*/false));
  // With the cache excluded from commits, recovery zeroes it and rebuilds
  // from clean base data: the run completes.
  EXPECT_TRUE(run_with_corruption(/*volatile_cache=*/true));
}

TEST(PartialCommit, OutputsStayConsistentWithVolatileRanges) {
  CacheHarness reference(/*volatile_cache=*/true);
  reference.computation->Run();

  CacheHarness failed(/*volatile_cache=*/true);
  failed.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(700),
                                          ftx::Milliseconds(1));
  failed.computation->Run();

  auto check = ftx_rec::CheckConsistentRecovery(reference.computation->recorder(),
                                                failed.computation->recorder(), 1);
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

}  // namespace
