// Tests for ftx::prof, the host-time scoped profiler: scope aggregation
// into collapsed stacks, inactive scopes being no-ops, activation nesting,
// leaf aggregation, the export surfaces (collapsed text round-trip, JSON,
// registry counters, Chrome trace), TrialPool propagation with
// jobs-independent scope counts, host metadata, and the recovery-path
// instrumentation actually firing during a crash-and-recover run.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/computation.h"
#include "src/core/experiment.h"
#include "src/core/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/prof/prof.h"

namespace {

using ftx_prof::Activation;
using ftx_prof::ParseCollapsed;
using ftx_prof::Profile;
using ftx_prof::Profiler;
using ftx_prof::Scope;

void Spin() {
  // Make every scope interval strictly positive without sleeping.
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
}

TEST(ProfScope, NestedScopesBuildCollapsedStacks) {
  Profiler profiler;
  {
    Activation on(&profiler);
    for (int i = 0; i < 3; ++i) {
      Scope outer("commit");
      Spin();
      {
        Scope inner("commit.crc");
        Spin();
      }
    }
    {
      Scope other("recover");
      Spin();
    }
  }
  Profile profile = profiler.Merge();
  ASSERT_EQ(profile.entries.size(), 3u);
  // Entries are sorted by stack path.
  EXPECT_EQ(profile.entries[0].stack, "commit");
  EXPECT_EQ(profile.entries[1].stack, "commit;commit.crc");
  EXPECT_EQ(profile.entries[2].stack, "recover");

  const ftx_prof::ProfileEntry* outer = profile.Find("commit");
  const ftx_prof::ProfileEntry* inner = profile.Find("commit;commit.crc");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3);
  EXPECT_EQ(inner->count, 3);
  // Parent total includes the child; self excludes it.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_GE(outer->total_ns, outer->self_ns);
  EXPECT_EQ(inner->total_ns, inner->self_ns);  // leaf: no children
  EXPECT_GT(inner->total_ns, 0);
  EXPECT_EQ(profile.Find("missing"), nullptr);
}

TEST(ProfScope, ScopesWithoutActiveProfilerAreNoOps) {
  {
    Scope scope("orphan");
    Spin();
  }
  FTX_PROF_SCOPE("orphan_macro");
  Profiler profiler;
  EXPECT_TRUE(profiler.Merge().empty());
  EXPECT_EQ(Profiler::ActiveOnThisThread(), nullptr);
}

TEST(ProfScope, ActivationNestsAndRestores) {
  Profiler outer_profiler;
  Profiler inner_profiler;
  {
    Activation outer(&outer_profiler);
    EXPECT_EQ(Profiler::ActiveOnThisThread(), &outer_profiler);
    {
      Scope scope("outer_scope");
      Spin();
    }
    {
      Activation inner(&inner_profiler);
      EXPECT_EQ(Profiler::ActiveOnThisThread(), &inner_profiler);
      Scope scope("inner_scope");
      Spin();
    }
    {
      // Activation(nullptr) is the propagation no-op: the outer profiler
      // stays active.
      Activation noop(nullptr);
      EXPECT_EQ(Profiler::ActiveOnThisThread(), &outer_profiler);
      Scope scope("still_outer");
      Spin();
    }
  }
  EXPECT_EQ(Profiler::ActiveOnThisThread(), nullptr);
  Profile outer_profile = outer_profiler.Merge();
  Profile inner_profile = inner_profiler.Merge();
  EXPECT_NE(outer_profile.Find("outer_scope"), nullptr);
  EXPECT_NE(outer_profile.Find("still_outer"), nullptr);
  EXPECT_EQ(outer_profile.Find("inner_scope"), nullptr);
  ASSERT_EQ(inner_profile.entries.size(), 1u);
  EXPECT_EQ(inner_profile.entries[0].stack, "inner_scope");
}

TEST(ProfScope, LeafAggregationSumsAcrossStacks) {
  Profiler profiler;
  {
    Activation on(&profiler);
    {
      Scope a("a");
      Scope shared("shared");
      Spin();
    }
    {
      Scope b("b");
      for (int i = 0; i < 2; ++i) {
        Scope shared("shared");
        Spin();
      }
    }
  }
  Profile profile = profiler.Merge();
  // "shared" appears under two parents; leaf aggregation sums both.
  EXPECT_EQ(profile.LeafCount("shared"), 3);
  const ftx_prof::ProfileEntry* under_a = profile.Find("a;shared");
  const ftx_prof::ProfileEntry* under_b = profile.Find("b;shared");
  ASSERT_NE(under_a, nullptr);
  ASSERT_NE(under_b, nullptr);
  EXPECT_EQ(profile.LeafTotalNs("shared"), under_a->total_ns + under_b->total_ns);
  EXPECT_EQ(profile.LeafCount("a"), 1);
  EXPECT_EQ(profile.LeafCount("nonexistent"), 0);
  EXPECT_EQ(profile.LeafTotalNs("nonexistent"), 0);
}

TEST(ProfExport, CollapsedTextRoundTrips) {
  Profiler profiler;
  {
    Activation on(&profiler);
    for (int i = 0; i < 5; ++i) {
      Scope outer("phase");
      Scope inner("phase.step");
      Spin();
    }
  }
  Profile profile = profiler.Merge();

  // Count-weighted collapsed text is fully deterministic.
  std::string counts = profile.ToCollapsed(/*weight_ns=*/false);
  EXPECT_EQ(counts, "phase 5\nphase;phase.step 5\n");

  // ns-weighted text parses back into the same stacks with the weights in
  // total_ns.
  std::string weighted = profile.ToCollapsed(/*weight_ns=*/true);
  Profile parsed;
  std::string error;
  ASSERT_TRUE(ParseCollapsed(weighted, &parsed, &error)) << error;
  ASSERT_EQ(parsed.entries.size(), profile.entries.size());
  for (size_t i = 0; i < parsed.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].stack, profile.entries[i].stack);
    EXPECT_EQ(parsed.entries[i].total_ns, profile.entries[i].total_ns);
  }
}

TEST(ProfExport, ParseCollapsedRejectsMalformedLines) {
  Profile parsed;
  std::string error;
  EXPECT_FALSE(ParseCollapsed("stack_without_weight\n", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseCollapsed("stack notanumber\n", &parsed, &error));
  // Empty input is a valid (empty) profile.
  EXPECT_TRUE(ParseCollapsed("", &parsed, &error));
  EXPECT_TRUE(parsed.empty());
}

TEST(ProfExport, JsonCarriesSchemaAndEntries) {
  Profiler profiler;
  {
    Activation on(&profiler);
    Scope scope("solo");
    Spin();
  }
  Profile profile = profiler.Merge();
  std::string json = profile.ToJson().Dump(1);
  EXPECT_NE(json.find("\"schema\""), std::string::npos);
  EXPECT_NE(json.find(ftx_prof::kProfSchemaName), std::string::npos);
  EXPECT_NE(json.find("\"solo\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
}

TEST(ProfExport, PublishToRegistersCounters) {
  Profiler profiler;
  {
    Activation on(&profiler);
    for (int i = 0; i < 4; ++i) {
      Scope scope("published");
      Spin();
    }
  }
  Profile profile = profiler.Merge();
  ftx_obs::Registry registry;
  profile.PublishTo(&registry);
  ftx_obs::MetricsSnapshot snapshot = registry.Snapshot();
  const ftx_obs::MetricValue* count = snapshot.Find("prof.published.count");
  const ftx_obs::MetricValue* ns = snapshot.Find("prof.published.ns");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(count->counter, 4);
  EXPECT_GT(ns->counter, 0);
}

TEST(ProfExport, ChromeTraceEmitsCompleteEvents) {
  Profiler profiler;
  {
    Activation on(&profiler);
    Scope outer("root");
    Scope inner("child");
    Spin();
  }
  std::string trace = profiler.Merge().ToChromeTrace().Dump();
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\""), std::string::npos);
  EXPECT_NE(trace.find("\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"root\""), std::string::npos);
  EXPECT_NE(trace.find("\"child\""), std::string::npos);
}

// The merged scope counts must not depend on how trials were sharded
// across workers: run the same scoped workload at --jobs 1 and --jobs 8
// and compare everything except the wall-clock fields.
TEST(ProfPool, ScopeCountsAreJobsIndependent) {
  auto run = [](int jobs) {
    Profiler profiler;
    ftx::TrialPool pool(jobs);
    {
      Activation on(&profiler);
      pool.ParallelFor(16, [](int64_t i) {
        Scope trial("trial");
        for (int64_t k = 0; k <= i % 3; ++k) {
          Scope step("trial.step");
          Spin();
        }
      });
    }
    std::map<std::string, int64_t> counts;
    for (const ftx_prof::ProfileEntry& entry : profiler.Merge().entries) {
      counts[entry.stack] = entry.count;
    }
    return counts;
  };
  std::map<std::string, int64_t> serial = run(1);
  std::map<std::string, int64_t> parallel = run(8);
  EXPECT_EQ(serial, parallel);
  ASSERT_TRUE(serial.count("trial"));
  EXPECT_EQ(serial["trial"], 16);
  // i % 3 over [0, 16): six 0s, five 1s, five 2s -> 6*1 + 5*2 + 5*3 steps.
  EXPECT_EQ(serial["trial;trial.step"], 31);
}

TEST(ProfPool, WorkerThreadsRecordIntoCallersProfiler) {
  Profiler profiler;
  ftx::TrialPool pool(4);
  {
    Activation on(&profiler);
    pool.ParallelFor(32, [](int64_t) {
      FTX_PROF_SCOPE("pooled");
      Spin();
    });
  }
  Profile profile = profiler.Merge();
  const ftx_prof::ProfileEntry* entry = profile.Find("pooled");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 32);
  EXPECT_GT(entry->total_ns, 0);
}

TEST(ProfHost, MetaCarriesRealHostFields) {
  std::string meta = ftx_prof::HostMetaJson().Dump(1);
  EXPECT_NE(meta.find("\"cpu_model\""), std::string::npos);
  EXPECT_NE(meta.find("\"num_cpus\""), std::string::npos);
  EXPECT_NE(meta.find("\"ftx_native\""), std::string::npos);
  EXPECT_NE(meta.find("\"sanitizer\""), std::string::npos);
  EXPECT_NE(meta.find("\"compiler\""), std::string::npos);
}

// End-to-end: a DC-disk run that crashes and recovers must light up the
// recovery-phase scopes in src/checkpoint/runtime.cc — and produce exactly
// the same simulated results as the unprofiled run (profiling must be
// invisible to the simulation).
TEST(ProfRecovery, CrashRunPopulatesRecoveryPhases) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.protocol = "cpvs";
  spec.scale = 10;
  spec.seed = 77;
  spec.store = ftx::StoreKind::kDisk;

  ftx::RunSpec baseline_spec = spec;
  baseline_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput baseline = ftx::RunExperiment(baseline_spec);
  const ftx::Duration crash_at =
      ftx::Nanoseconds(baseline.elapsed.nanos() / 2);
  ASSERT_GT(crash_at.nanos(), 0);

  auto run_crash = [&](Profiler* profiler) {
    std::unique_ptr<ftx::Computation> computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + crash_at,
                                     ftx::Milliseconds(50));
    Activation on(profiler);  // nullptr-safe: unprofiled control run
    ftx::ComputationResult result = computation->Run();
    return ftx::Collect(*computation, result);
  };

  Profiler profiler;
  ftx::RunOutput profiled = run_crash(&profiler);
  ftx::RunOutput unprofiled = run_crash(nullptr);

  // Profiling changed nothing the simulation can see.
  EXPECT_EQ(profiled.result.total_rollbacks, unprofiled.result.total_rollbacks);
  EXPECT_EQ(profiled.checkpoints, unprofiled.checkpoints);
  EXPECT_EQ(profiled.elapsed.nanos(), unprofiled.elapsed.nanos());

  Profile profile = profiler.Merge();
  EXPECT_GE(profile.LeafCount("recover"), 1);
  EXPECT_GE(profile.LeafCount("recover.log_scan"), 1);
  EXPECT_GE(profile.LeafCount("recover.reprotect"), 1);
  EXPECT_GE(profile.LeafCount("recover.kernel_replay"), 1);
  EXPECT_GE(profile.LeafCount("recover.app_rebuild"), 1);
  // The DC-disk commit path is instrumented too, and the crash happened
  // mid-run, after commits.
  EXPECT_GE(profile.LeafCount("commit"), 1);
  EXPECT_GT(profile.LeafTotalNs("recover"), 0);
  // The recovery sub-phases nest under "recover" in the collapsed stacks.
  EXPECT_EQ(profile.Find("recover.log_scan"), nullptr);
  EXPECT_NE(profile.Find("recover;recover.log_scan"), nullptr);
}

}  // namespace
