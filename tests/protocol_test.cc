// Tests for the Save-work protocols: unit tests of each protocol's decision
// table, plus the central property test of the library — every protocol,
// applied to randomized multi-process computations, produces a trace the
// Save-work checker accepts. A deliberately broken protocol is the negative
// control.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <tuple>

#include "src/common/rng.h"
#include "src/protocol/protocol.h"
#include "src/protocol/protocol_space.h"
#include "src/protocol/script_replay.h"
#include "src/statemachine/invariants.h"
#include "src/statemachine/random_model.h"

namespace {

using ftx_proto::AppEvent;
using ftx_proto::CommitDecision;
using ftx_proto::Protocol;

// --- decision tables ---

TEST(ProtocolDecisions, CandCommitsAfterEveryNdEvent) {
  auto protocol = ftx_proto::MakeCand();
  for (AppEvent event : {AppEvent::kTransientNd, AppEvent::kFixedNd, AppEvent::kUserInput,
                         AppEvent::kReceive}) {
    CommitDecision d = protocol->Decide(event);
    EXPECT_TRUE(d.commit_after);
    EXPECT_FALSE(d.commit_before);
    EXPECT_FALSE(d.log_event);
    protocol->OnCommitted();
  }
  EXPECT_FALSE(protocol->Decide(AppEvent::kVisible).commit_after);
  EXPECT_FALSE(protocol->Decide(AppEvent::kSend).commit_after);
  EXPECT_FALSE(protocol->Decide(AppEvent::kInternal).commit_after);
}

TEST(ProtocolDecisions, CandLogLogsInputAndReceives) {
  auto protocol = ftx_proto::MakeCandLog();
  CommitDecision input = protocol->Decide(AppEvent::kUserInput);
  EXPECT_TRUE(input.log_event);
  EXPECT_FALSE(input.commit_after);
  CommitDecision recv = protocol->Decide(AppEvent::kReceive);
  EXPECT_TRUE(recv.log_event);
  EXPECT_FALSE(recv.commit_after);
  // Unloggable ND still commits.
  CommitDecision signal = protocol->Decide(AppEvent::kTransientNd);
  EXPECT_FALSE(signal.log_event);
  EXPECT_TRUE(signal.commit_after);
}

TEST(ProtocolDecisions, CpvsCommitsBeforeVisibleAndSendAlways) {
  auto protocol = ftx_proto::MakeCpvs();
  EXPECT_TRUE(protocol->Decide(AppEvent::kVisible).commit_before);
  protocol->OnCommitted();
  // Even with no ND since the last commit: CPVS is pessimistic.
  EXPECT_TRUE(protocol->Decide(AppEvent::kSend).commit_before);
  EXPECT_FALSE(protocol->Decide(AppEvent::kTransientNd).commit_before);
}

TEST(ProtocolDecisions, CbndvsCommitsOnlyWhenNdDirty) {
  auto protocol = ftx_proto::MakeCbndvs();
  EXPECT_FALSE(protocol->Decide(AppEvent::kVisible).commit_before);  // clean
  protocol->Decide(AppEvent::kTransientNd);
  EXPECT_TRUE(protocol->HasUncommittedNd());
  EXPECT_TRUE(protocol->Decide(AppEvent::kVisible).commit_before);
  protocol->OnCommitted();
  EXPECT_FALSE(protocol->HasUncommittedNd());
  EXPECT_FALSE(protocol->Decide(AppEvent::kSend).commit_before);
}

TEST(ProtocolDecisions, CbndvsLogOnlyArmsOnUnloggedNd) {
  auto protocol = ftx_proto::MakeCbndvsLog();
  protocol->Decide(AppEvent::kUserInput);  // logged: does not arm
  EXPECT_FALSE(protocol->Decide(AppEvent::kVisible).commit_before);
  protocol->Decide(AppEvent::kTransientNd);  // unloggable: arms
  EXPECT_TRUE(protocol->Decide(AppEvent::kVisible).commit_before);
}

TEST(ProtocolDecisions, TwoPhaseVariantsCoordinateOnVisibleOnly) {
  auto cpv = ftx_proto::MakeCpv2pc();
  CommitDecision on_visible = cpv->Decide(AppEvent::kVisible);
  EXPECT_TRUE(on_visible.commit_before);
  EXPECT_TRUE(on_visible.coordinated);
  EXPECT_EQ(on_visible.scope, ftx_proto::CoordinationScope::kAll);
  EXPECT_FALSE(cpv->Decide(AppEvent::kSend).commit_before);  // sends are free

  auto cbndv = ftx_proto::MakeCbndv2pc();
  CommitDecision narrowed = cbndv->Decide(AppEvent::kVisible);
  EXPECT_TRUE(narrowed.coordinated);
  EXPECT_EQ(narrowed.scope, ftx_proto::CoordinationScope::kNdDirty);
}

TEST(ProtocolDecisions, CommitAllCommitsEverything) {
  auto protocol = ftx_proto::MakeCommitAll();
  for (AppEvent event : {AppEvent::kInternal, AppEvent::kTransientNd, AppEvent::kVisible,
                         AppEvent::kSend}) {
    EXPECT_TRUE(protocol->Decide(event).commit_after);
  }
}

TEST(ProtocolFactory, AllMeasuredNamesResolve) {
  for (const std::string& name : ftx_proto::MeasuredProtocolNames()) {
    auto protocol = ftx_proto::MakeProtocolByName(name);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->name(), name);
    auto clone = protocol->Clone();
    EXPECT_EQ(clone->name(), name);
  }
}

TEST(ProtocolSpace, EntriesCoverImplementedProtocols) {
  int implemented = 0;
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    EXPECT_GE(entry.point.nd_effort, 0.0);
    EXPECT_LE(entry.point.nd_effort, 1.0);
    EXPECT_GE(entry.point.visible_effort, 0.0);
    EXPECT_LE(entry.point.visible_effort, 1.0);
    if (entry.implemented) {
      ++implemented;
      EXPECT_NO_FATAL_FAILURE({ ftx_proto::MakeProtocolByName(entry.name); });
    }
  }
  EXPECT_EQ(implemented, 15);  // every point in the space is instantiable
}

TEST(ProtocolSpace, DesignVariablesFollowFig4Trends) {
  // Commit frequency falls with radial distance.
  auto origin = ftx_proto::DeriveDesignVariables({0.0, 0.0});
  auto far = ftx_proto::DeriveDesignVariables({0.9, 0.9});
  EXPECT_GT(origin.relative_commit_frequency, far.relative_commit_frequency);
  // Recovery-time constraint grows along x.
  EXPECT_GT(ftx_proto::DeriveDesignVariables({0.9, 0.0}).recovery_constraint,
            ftx_proto::DeriveDesignVariables({0.1, 0.0}).recovery_constraint);
  // Propagation-failure survival grows with distance from the x axis.
  EXPECT_GT(ftx_proto::DeriveDesignVariables({0.2, 0.9}).propagation_survival,
            ftx_proto::DeriveDesignVariables({0.2, 0.0}).propagation_survival);
}

TEST(ProtocolSpace, AsciiRenderingMentionsEveryProtocol) {
  std::string plot = ftx_proto::RenderProtocolSpaceAscii();
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    EXPECT_NE(plot.find(entry.name.substr(0, 4)), std::string::npos) << entry.name;
  }
}

// --- the Save-work property ---
//
// A miniature protocol executor: replays a random multi-process script,
// consulting a per-process protocol instance for every event and appending
// the resulting commit events (including full 2PC rounds) to the trace —
// the same event discipline the real runtime follows. The resulting trace
// must satisfy the Save-work checker for every protocol.

using ProtocolSeed = std::tuple<std::string, uint64_t>;

class SaveWorkProperty : public ::testing::TestWithParam<ProtocolSeed> {};

TEST_P(SaveWorkProperty, RandomComputationsUpholdSaveWork) {
  const auto& [protocol_name, seed] = GetParam();
  ftx::Rng rng(seed);
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 3;
  options.events_per_process = 60;
  std::vector<ftx_sm::ScriptedEvent> script = ftx_sm::MakeRandomScript(&rng, options);

  ftx_proto::ScriptReplayResult replay =
      ftx_proto::ReplayScript(script, options.num_processes, protocol_name);

  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(replay.trace);
  EXPECT_TRUE(report.ok()) << protocol_name << " seed " << seed << ": "
                           << report.violations.size() << " violations, e.g. "
                           << report.violations[0].ToString(replay.trace);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsManySeeds, SaveWorkProperty,
    ::testing::Combine(::testing::Values("commit-all", "cand", "cand-log", "cpvs", "cbndvs",
                                         "cbndvs-log", "cpv-2pc", "cbndv-2pc", "sbl",
                                         "targon32", "hypervisor", "optimistic-log",
                                         "coordinated-ckpt", "fbl", "manetho"),
                       ::testing::Range<uint64_t>(1, 16)),
    [](const ::testing::TestParamInfo<ProtocolSeed>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(SaveWorkNegativeControl, NeverCommittingViolates) {
  // Sanity check that the property is not vacuous: a "protocol" that never
  // commits or logs fails the checker on ND-before-visible computations.
  ftx::Rng rng(99);
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 2;
  options.events_per_process = 80;
  options.nd_probability = 0.5;
  options.visible_probability = 0.3;
  ftx_sm::Trace trace = ftx_sm::MakeRandomComputation(&rng, options);
  EXPECT_FALSE(ftx_sm::CheckSaveWork(trace).ok());
}

TEST(SaveWorkCommitCounts, CbndvsNeverCommitsMoreThanCpvs) {
  // The protocol-space refinement: knowledge of non-determinism can only
  // remove commits.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ftx::Rng rng_a(seed);
    ftx::Rng rng_b(seed);
    ftx_sm::RandomTraceOptions options;
    auto script_a = ftx_sm::MakeRandomScript(&rng_a, options);
    auto script_b = ftx_sm::MakeRandomScript(&rng_b, options);

    auto cpvs = ftx_proto::ReplayScript(script_a, options.num_processes, "cpvs");
    auto cbndvs = ftx_proto::ReplayScript(script_b, options.num_processes, "cbndvs");
    EXPECT_LE(cbndvs.total_commits, cpvs.total_commits) << "seed " << seed;
  }
}

TEST(SaveWorkCommitCounts, LoggingReducesCandCommits) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ftx::Rng rng_a(seed);
    ftx::Rng rng_b(seed);
    ftx_sm::RandomTraceOptions options;
    auto script_a = ftx_sm::MakeRandomScript(&rng_a, options);
    auto script_b = ftx_sm::MakeRandomScript(&rng_b, options);

    auto cand = ftx_proto::ReplayScript(script_a, options.num_processes, "cand");
    auto cand_log = ftx_proto::ReplayScript(script_b, options.num_processes, "cand-log");
    EXPECT_LE(cand_log.total_commits, cand.total_commits) << "seed " << seed;
  }
}

}  // namespace
