// Why Discount Checking needs Rio (or a disk): commits that live in plain
// volatile memory are as fast as Rio's — and worthless the moment the
// operating system crashes.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/recovery/consistency.h"

namespace {

ftx::RunOutput RunWithOsCrash(ftx::StoreKind store) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 120;
  spec.protocol = "cpvs";
  spec.seed = 55;
  spec.store = store;
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleOsStopFailure(ftx::TimePoint() + ftx::Seconds(6.0),
                                     /*reboot_delay=*/ftx::Seconds(5.0));
  auto result = computation->Run();
  return ftx::Collect(*computation, result);
}

TEST(RioNecessity, ProcessCrashRecoverableOnAnyStore) {
  // Volatile memory DOES survive a mere process failure (the OS and its
  // memory are fine): rollback works exactly like Rio.
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 120;
  spec.protocol = "cpvs";
  spec.store = ftx::StoreKind::kVolatileMemory;
  ftx::RecoveryCheck check = ftx::VerifyConsistentRecovery(
      spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(5.0));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(RioNecessity, OsCrashLosesAllWorkWithoutRio) {
  ftx::RunSpec reference_spec;
  reference_spec.workload = "nvi";
  reference_spec.scale = 120;
  reference_spec.seed = 55;
  reference_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput reference = ftx::RunExperiment(reference_spec);

  // Rio: the crash costs one keystroke of rollback.
  ftx::RunOutput rio = RunWithOsCrash(ftx::StoreKind::kRio);
  ASSERT_TRUE(rio.result.all_done);
  auto rio_check =
      ftx_rec::CheckConsistentRecovery(reference.outputs, rio.outputs, 1);
  EXPECT_TRUE(rio_check.consistent) << rio_check.diagnostic;
  EXPECT_LE(rio_check.duplicates_tolerated, 3);

  // Volatile memory: the crash forfeits every commit; the editor restarts
  // from scratch and retypes everything — ~60 keystrokes of work redone.
  ftx::RunOutput volatile_memory = RunWithOsCrash(ftx::StoreKind::kVolatileMemory);
  ASSERT_TRUE(volatile_memory.result.all_done);
  auto volatile_check =
      ftx_rec::CheckConsistentRecovery(reference.outputs, volatile_memory.outputs, 1);
  // Still *consistent* (the rerun repeats earlier output)...
  EXPECT_TRUE(volatile_check.consistent) << volatile_check.diagnostic;
  // ...but the lost work is enormous compared to Rio's.
  EXPECT_GT(volatile_check.duplicates_tolerated, 40);
}

TEST(RioNecessity, DiskAlsoSurvivesOsCrash) {
  ftx::RunOutput disk = RunWithOsCrash(ftx::StoreKind::kDisk);
  EXPECT_TRUE(disk.result.all_done);
  EXPECT_GE(disk.result.total_rollbacks, 1);
}

}  // namespace
