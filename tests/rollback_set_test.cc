// Tests for cascading-rollback computation: the domino effect on commitless
// traces, containment under CPVS (commit before send) and under logging,
// plus the property that CPVS-governed random computations never cascade.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/common/rng.h"
#include "src/protocol/protocol.h"
#include "src/recovery/rollback_set.h"
#include "src/statemachine/random_model.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::Trace;

TEST(RollbackSet, NoMessagesMeansNoCascade) {
  Trace trace(2);
  trace.Append(0, EventKind::kInternal);
  trace.Append(0, EventKind::kInternal);
  trace.Append(1, EventKind::kInternal);

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, /*failed_survive_through=*/-1);
  EXPECT_EQ(plan.survive_through[0], -1);
  EXPECT_EQ(plan.survive_through[1], 0);  // NumEvents(1)-1: untouched
  EXPECT_EQ(plan.processes_rolled_back, 0);
}

TEST(RollbackSet, OrphanMessageForcesReceiverBack) {
  // p0's send depends on uncommitted transient ND: reexecution may send a
  // DIFFERENT message. p1 received the old one and has no commit: p1
  // unwinds to its initial state.
  Trace trace(2);
  trace.Append(0, EventKind::kInternal);     // 0 survives
  trace.Append(0, EventKind::kTransientNd);  // 1 aborted: the orphan source
  trace.Append(0, EventKind::kSend, 7);      // 2 aborted
  trace.Append(1, EventKind::kReceive, 7);
  trace.Append(1, EventKind::kVisible);

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, /*failed_survive_through=*/0);
  EXPECT_EQ(plan.survive_through[1], -1);
  EXPECT_EQ(plan.processes_rolled_back, 1);
  EXPECT_TRUE(plan.dominoed_to_start);
}

TEST(RollbackSet, ReceiverCommitBeforeReceiveLimitsDamage) {
  Trace trace(2);
  trace.Append(0, EventKind::kTransientNd);  // aborted ND feeds the send
  trace.Append(0, EventKind::kSend, 7);      // aborted, NOT regenerable
  trace.Append(1, EventKind::kInternal);     // 0
  trace.Append(1, EventKind::kCommit);       // 1 <- lands here
  trace.Append(1, EventKind::kReceive, 7);   // 2 orphaned
  trace.Append(1, EventKind::kInternal);     // 3

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, -1);
  EXPECT_EQ(plan.survive_through[1], 1);
  EXPECT_FALSE(plan.dominoed_to_start);
}

TEST(RollbackSet, DeterministicallyRegenerableSendIsNoOrphan) {
  // The aborted send has no unlogged ND between the sender's rollback point
  // and the send: reexecution regenerates the identical message, so the
  // receiver keeps it (§5: senders deterministically regenerate messages).
  Trace trace(2);
  trace.Append(0, EventKind::kInternal);
  trace.Append(0, EventKind::kSend, 7);  // aborted but regenerable
  trace.Append(1, EventKind::kReceive, 7);
  trace.Append(1, EventKind::kVisible);

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, /*failed_survive_through=*/-1);
  EXPECT_EQ(plan.processes_rolled_back, 0);
}

TEST(RollbackSet, LoggedReceiveIsNeverOrphaned) {
  Trace trace(2);
  trace.Append(0, EventKind::kTransientNd);                  // aborted ND
  trace.Append(0, EventKind::kSend, 7);                      // aborted
  trace.Append(1, EventKind::kReceive, 7, /*logged=*/true);  // replayable
  trace.Append(1, EventKind::kVisible);

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, -1);
  EXPECT_EQ(plan.survive_through[1], 1);  // untouched
  EXPECT_EQ(plan.processes_rolled_back, 0);
}

TEST(RollbackSet, CommitBeforeSendStopsTheCascadeAtTheSource) {
  // Rolling back past uncommitted ND that feeds a send orphans the
  // receiver...
  Trace naked(2);
  naked.Append(0, EventKind::kCommit);       // 0 <- rollback lands here
  naked.Append(0, EventKind::kTransientNd);  // 1 aborted ND
  naked.Append(0, EventKind::kSend, 7);      // 2 aborted, not regenerable
  naked.Append(1, EventKind::kReceive, 7);
  auto cascaded = ftx_rec::ComputeRollbackSet(naked, 0, 0);
  EXPECT_EQ(cascaded.processes_rolled_back, 1);

  // ...but CPVS commits immediately before the send: the aborted suffix
  // between the rollback point and the send is ND-free, so the message is
  // regenerated and nothing cascades.
  Trace cpvs(2);
  cpvs.Append(0, EventKind::kTransientNd);
  cpvs.Append(0, EventKind::kCommit);   // 1: CPVS pre-send commit
  cpvs.Append(0, EventKind::kSend, 7);  // 2 aborted but regenerable
  cpvs.Append(1, EventKind::kReceive, 7);
  auto contained = ftx_rec::ComputeRollbackSet(cpvs, 0, 1);
  EXPECT_EQ(contained.processes_rolled_back, 0);
}

TEST(RollbackSet, ChainedDominoAcrossThreeProcesses) {
  // p0 -> p1 -> p2, no commits anywhere: one failure unwinds everyone.
  Trace trace(3);
  trace.Append(0, EventKind::kTransientNd);
  trace.Append(0, EventKind::kSend, 1);
  trace.Append(1, EventKind::kReceive, 1);
  trace.Append(1, EventKind::kSend, 2);
  trace.Append(2, EventKind::kReceive, 2);
  trace.Append(2, EventKind::kVisible);

  auto plan = ftx_rec::ComputeRollbackSet(trace, 0, -1);
  EXPECT_EQ(plan.survive_through[0], -1);
  EXPECT_EQ(plan.survive_through[1], -1);
  EXPECT_EQ(plan.survive_through[2], -1);
  EXPECT_EQ(plan.processes_rolled_back, 2);
  EXPECT_TRUE(plan.dominoed_to_start);
  EXPECT_GE(plan.cascade_rounds, 2);
}

// Property: under CPVS (commit before every visible AND send), a failure
// never cascades — the paper's §5 point that its protocols, unlike plain
// communication-induced checkpointing, only roll back failed processes.
class CpvsContainmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpvsContainmentProperty, FailureNeverCascades) {
  ftx::Rng rng(GetParam());
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 4;
  options.events_per_process = 50;
  std::vector<ftx_sm::ScriptedEvent> script = ftx_sm::MakeRandomScript(&rng, options);

  // Execute under CPVS: commits inserted before each visible/send.
  Trace trace(options.num_processes);
  std::vector<std::unique_ptr<ftx_proto::Protocol>> protocols;
  for (int p = 0; p < options.num_processes; ++p) {
    protocols.push_back(ftx_proto::MakeCpvs());
  }
  for (const auto& ev : script) {
    ftx_proto::AppEvent app_event = ftx_proto::AppEvent::kInternal;
    switch (ev.kind) {
      case EventKind::kSend:
        app_event = ftx_proto::AppEvent::kSend;
        break;
      case EventKind::kVisible:
        app_event = ftx_proto::AppEvent::kVisible;
        break;
      case EventKind::kReceive:
        app_event = ftx_proto::AppEvent::kReceive;
        break;
      default:
        break;
    }
    auto d = protocols[static_cast<size_t>(ev.process)]->Decide(app_event);
    if (d.commit_before) {
      trace.Append(ev.process, EventKind::kCommit);
      protocols[static_cast<size_t>(ev.process)]->OnCommitted();
    }
    trace.Append(ev.process, ev.kind, ev.message_id, ev.logged);
  }

  // Fail every process in turn at its last commit: no cascades, ever.
  for (int failed = 0; failed < options.num_processes; ++failed) {
    auto commit = trace.LastCommitAtOrBefore(failed, trace.NumEvents(failed) - 1);
    int64_t survive = commit.has_value() ? commit->index : -1;
    auto plan = ftx_rec::ComputeRollbackSet(trace, failed, survive);
    EXPECT_EQ(plan.processes_rolled_back, 0)
        << "failed process " << failed << " cascaded (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpvsContainmentProperty, ::testing::Range<uint64_t>(1, 13));

}  // namespace
