// Tests for the Discount Checking runtime: commit/rollback round trips,
// kernel-state reconstruction, ND-log replay, DC-disk redo recovery, and
// cost accounting — driven through a purpose-built test application.

#include <gtest/gtest.h>

#include "src/core/computation.h"
#include "src/recovery/consistency.h"
#include "src/statemachine/invariants.h"

namespace {

// A deterministic counter app: each step reads one input token, adds it to
// an accumulator in the segment, echoes the accumulator (visible), and
// occasionally performs syscalls and transient ND events.
class CounterApp : public ftx_dc::App {
 public:
  struct State {
    int64_t steps = 0;
    int64_t accumulator = 0;
    int64_t fd = -1;
  };

  std::string_view name() const override { return "counter"; }
  size_t SegmentBytes() const override { return 64 * 1024; }
  int64_t HeapBytes() const override { return 16 * 1024; }
  int64_t HeapOffset() const override { return 32 * 1024; }

  void Init(ftx_dc::ProcessEnv& env) override {
    State state;
    ftx::Result<int> fd = env.Open("counter.log", true);
    state.fd = fd.ok() ? *fd : -1;
    env.segment().WriteValue(0, state);
  }

  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override {
    std::optional<ftx::Bytes> token = env.ReadUserInput();
    if (!token.has_value()) {
      return {ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    auto state = env.segment().Read<State>(0);
    ++state.steps;
    state.accumulator += (*token)[0];
    env.segment().WriteValue(0, state);

    env.Compute(ftx::Microseconds(50));
    if (state.steps % 5 == 0) {
      (void)env.GetTimeOfDay();  // unloggable transient ND
    }
    if (state.steps % 7 == 0 && state.fd >= 0) {
      (void)env.WriteFile(static_cast<int>(state.fd), 128);
    }
    ftx::Bytes echo;
    ftx::AppendValue(&echo, state.steps);
    ftx::AppendValue(&echo, state.accumulator);
    env.Print(std::move(echo));
    return {ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  static State Read(ftx_dc::ProcessEnv& env) { return env.segment().Read<State>(0); }
};

std::vector<ftx::Bytes> TokenScript(int n) {
  std::vector<ftx::Bytes> script;
  for (int i = 0; i < n; ++i) {
    script.push_back(ftx::Bytes{static_cast<uint8_t>(1 + (i * 13) % 50)});
  }
  return script;
}

struct Harness {
  explicit Harness(const std::string& protocol, ftx::StoreKind store = ftx::StoreKind::kRio,
                   int tokens = 40) {
    ftx::ComputationOptions options;
    options.seed = 7;
    options.protocol = protocol;
    options.store = store;
    std::vector<std::unique_ptr<ftx_dc::App>> apps;
    apps.push_back(std::make_unique<CounterApp>());
    computation = std::make_unique<ftx::Computation>(options, std::move(apps));
    computation->SetInputScript(0, TokenScript(tokens));
  }
  std::unique_ptr<ftx::Computation> computation;
};

int64_t ExpectedAccumulator(int n) {
  int64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += 1 + (i * 13) % 50;
  }
  return acc;
}

TEST(Runtime, FailureFreeRunProducesExpectedState) {
  Harness h("cpvs");
  ftx::ComputationResult result = h.computation->Run();
  EXPECT_TRUE(result.all_done);
  auto state = CounterApp::Read(h.computation->runtime(0));
  EXPECT_EQ(state.steps, 40);
  EXPECT_EQ(state.accumulator, ExpectedAccumulator(40));
  EXPECT_EQ(h.computation->recorder().size(), 40u);
}

TEST(Runtime, StopFailureRecoversExactState) {
  for (const char* protocol : {"cpvs", "cand", "cbndvs", "cand-log", "cbndvs-log"}) {
    Harness h(protocol);
    h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(900));
    ftx::ComputationResult result = h.computation->Run();
    EXPECT_TRUE(result.all_done) << protocol;
    auto state = CounterApp::Read(h.computation->runtime(0));
    EXPECT_EQ(state.steps, 40) << protocol;
    EXPECT_EQ(state.accumulator, ExpectedAccumulator(40)) << protocol;
    EXPECT_GE(h.computation->runtime(0).stats().rollbacks, 1) << protocol;
  }
}

TEST(Runtime, DcDiskRecoversFromRedoChain) {
  Harness h("cpvs", ftx::StoreKind::kDisk);
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(500));
  ftx::ComputationResult result = h.computation->Run();
  EXPECT_TRUE(result.all_done);
  auto state = CounterApp::Read(h.computation->runtime(0));
  EXPECT_EQ(state.steps, 40);
  EXPECT_EQ(state.accumulator, ExpectedAccumulator(40));
  EXPECT_GE(h.computation->runtime(0).stats().rollbacks, 1);
}

TEST(Runtime, MultipleFailuresStillRecover) {
  Harness h("cbndvs");
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(500));
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(60));
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(120));
  ftx::ComputationResult result = h.computation->Run();
  EXPECT_TRUE(result.all_done);
  auto state = CounterApp::Read(h.computation->runtime(0));
  EXPECT_EQ(state.accumulator, ExpectedAccumulator(40));
  EXPECT_GE(h.computation->runtime(0).stats().rollbacks, 3);
}

TEST(Runtime, VisibleOutputConsistentAcrossFailure) {
  // Reference: failure-free run.
  Harness reference("cpvs");
  reference.computation->Run();

  Harness failed("cpvs");
  failed.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(1));
  failed.computation->Run();

  auto check = ftx_rec::CheckConsistentRecovery(reference.computation->recorder(),
                                                failed.computation->recorder(), 1);
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(Runtime, KernelStateSurvivesRecovery) {
  Harness h("cbndvs-log");
  h.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(2));
  ftx::ComputationResult result = h.computation->Run();
  ASSERT_TRUE(result.all_done);
  // The fd opened at Init must still be open after recovery, with the file
  // writes the run performed accounted (40/7 = 5 writes of 128B -> 1 block
  // each: disk usage must match exactly, not double-count replay).
  const ftx_sim::KernelState& kernel = h.computation->kernel().StateOf(0);
  ASSERT_FALSE(kernel.fd_table.empty());
  ASSERT_TRUE(kernel.fd_table[0].has_value());
  EXPECT_EQ(kernel.fd_table[0]->path, "counter.log");
  EXPECT_EQ(kernel.disk_blocks_used, 5);
}

TEST(Runtime, SaveWorkHoldsOnRecoveredTracePrefix) {
  // The failure-free portion of a protocol-governed run passes the
  // Save-work checker (the runtime's event discipline is correct).
  Harness h("cbndvs");
  ftx::ComputationResult result = h.computation->Run();
  ASSERT_TRUE(result.all_done);
  EXPECT_TRUE(ftx_sm::CheckSaveWork(h.computation->trace()).ok());
}

TEST(Runtime, CommitStatsAreCoherent) {
  Harness h("cand");
  ftx::ComputationResult result = h.computation->Run();
  ASSERT_TRUE(result.all_done);
  const auto& stats = h.computation->runtime(0).stats();
  // CAND commits once per unlogged ND event: 40/5 timeofday + 40/7 writes,
  // plus checkpoint #0 and the 40 loggable inputs (CAND does not log).
  EXPECT_GT(stats.commits, 40);
  EXPECT_GT(stats.nd_events, 40);
  EXPECT_EQ(stats.visible_events, 40);
  EXPECT_GT(stats.commit_time.nanos(), 0);
  EXPECT_GT(stats.pages_committed, 0);
}

TEST(Runtime, NdLogReplayKeepsLoggedProtocolConsistent) {
  // With cand-log, inputs are replayed from the ND log after recovery; the
  // run must still complete with identical final state and no duplicated
  // *new* outputs beyond tolerated repeats.
  Harness reference("cand-log");
  reference.computation->Run();
  auto ref_state = CounterApp::Read(reference.computation->runtime(0));

  Harness failed("cand-log");
  failed.computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(1));
  ftx::ComputationResult result = failed.computation->Run();
  ASSERT_TRUE(result.all_done);
  auto state = CounterApp::Read(failed.computation->runtime(0));
  EXPECT_EQ(state.accumulator, ref_state.accumulator);

  auto check = ftx_rec::CheckConsistentRecovery(reference.computation->recorder(),
                                                failed.computation->recorder(), 1);
  EXPECT_TRUE(check.consistent) << check.diagnostic;
}

TEST(Runtime, GroupCommitMatchesUnbatchedRunAndAuditsClean) {
  // Group-commit staging must be invisible to everything but the sync
  // schedule: same app state, same commit count, and a clean online
  // Save-work audit. cand commits after each ND event, so a step with two
  // ND events stages two records into one window; every Print flushes the
  // open window before the output escapes.
  auto run = [](bool batched) {
    ftx::ComputationOptions options;
    options.seed = 7;
    options.protocol = "cand";
    options.store = ftx::StoreKind::kDisk;
    options.audit = true;
    if (batched) {
      options.group_commit.enabled = true;
      options.group_commit.max_records = 8;
    }
    std::vector<std::unique_ptr<ftx_dc::App>> apps;
    apps.push_back(std::make_unique<CounterApp>());
    auto computation = std::make_unique<ftx::Computation>(options, std::move(apps));
    computation->SetInputScript(0, TokenScript(40));
    ftx::ComputationResult result = computation->Run();
    return std::make_pair(std::move(computation), result);
  };

  auto [unbatched, base] = run(false);
  auto [batched, grouped] = run(true);
  EXPECT_TRUE(base.all_done);
  EXPECT_TRUE(grouped.all_done);
  EXPECT_EQ(grouped.total_commits, base.total_commits);
  auto base_state = CounterApp::Read(unbatched->runtime(0));
  auto grouped_state = CounterApp::Read(batched->runtime(0));
  EXPECT_EQ(grouped_state.steps, base_state.steps);
  EXPECT_EQ(grouped_state.accumulator, base_state.accumulator);
  ASSERT_NE(batched->audit(), nullptr);
  EXPECT_EQ(batched->audit()->violations(), 0);
  // Clean shutdown leaves nothing staged.
  ASSERT_NE(batched->commit_pipeline(0), nullptr);
  EXPECT_TRUE(batched->commit_pipeline(0)->empty());
}

TEST(Runtime, GroupCommitSurvivesMidRunFailure) {
  // A kill with a window open drops the staged (never-reported) commits;
  // recovery replays the durable prefix and the run still finishes with
  // the exact expected state.
  ftx::ComputationOptions options;
  options.seed = 7;
  options.protocol = "cand";
  options.store = ftx::StoreKind::kDisk;
  options.group_commit.enabled = true;
  options.group_commit.max_records = 8;
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::make_unique<CounterApp>());
  ftx::Computation computation(options, std::move(apps));
  computation.SetInputScript(0, TokenScript(40));
  computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(500));
  ftx::ComputationResult result = computation.Run();
  EXPECT_TRUE(result.all_done);
  auto state = CounterApp::Read(computation.runtime(0));
  EXPECT_EQ(state.steps, 40);
  EXPECT_EQ(state.accumulator, ExpectedAccumulator(40));
  EXPECT_GE(computation.runtime(0).stats().rollbacks, 1);
}

TEST(Runtime, BaselineModeDoesNoRecoveryWork) {
  ftx::ComputationOptions options;
  options.mode = ftx_dc::RuntimeMode::kBaseline;
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::make_unique<CounterApp>());
  ftx::Computation computation(options, std::move(apps));
  computation.SetInputScript(0, TokenScript(20));
  ftx::ComputationResult result = computation.Run();
  EXPECT_TRUE(result.all_done);
  EXPECT_EQ(result.total_commits, 0);
  EXPECT_EQ(computation.runtime(0).stats().commit_time.nanos(), 0);
}

TEST(Runtime, RecoverableSlowerThanBaseline) {
  ftx::ComputationOptions options;
  options.mode = ftx_dc::RuntimeMode::kBaseline;
  std::vector<std::unique_ptr<ftx_dc::App>> baseline_apps;
  baseline_apps.push_back(std::make_unique<CounterApp>());
  ftx::Computation baseline(options, std::move(baseline_apps));
  baseline.SetInputScript(0, TokenScript(30));
  ftx::ComputationResult base = baseline.Run();

  options.mode = ftx_dc::RuntimeMode::kRecoverable;
  options.protocol = "cpvs";
  options.store = ftx::StoreKind::kDisk;
  std::vector<std::unique_ptr<ftx_dc::App>> rec_apps;
  rec_apps.push_back(std::make_unique<CounterApp>());
  ftx::Computation recoverable(options, std::move(rec_apps));
  recoverable.SetInputScript(0, TokenScript(30));
  ftx::ComputationResult rec = recoverable.Run();

  EXPECT_GT((rec.end_time - ftx::TimePoint()).nanos(),
            (base.end_time - ftx::TimePoint()).nanos());
}

}  // namespace
