// Regression net for the paper-reproduction shapes (EXPERIMENTS.md): the
// qualitative relationships of Fig. 8 and the fault studies, asserted at
// reduced scale so the suite stays fast. If a code or calibration change
// flips one of these, a bench's published shape has regressed.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/fault_study.h"

namespace {

ftx::OverheadRow Measure(const char* workload, const char* protocol, ftx::StoreKind store,
                         int scale) {
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.protocol = protocol;
  spec.store = store;
  spec.scale = scale;
  spec.seed = 11;
  return ftx::MeasureOverhead(spec);
}

// --- Fig. 8(a): nvi ---

TEST(Fig8Shape, NviLoggingCollapsesCommits) {
  auto cpvs = Measure("nvi", "cpvs", ftx::StoreKind::kRio, 600);
  auto log = Measure("nvi", "cbndvs-log", ftx::StoreKind::kRio, 600);
  EXPECT_GT(cpvs.checkpoints, 500);   // ~one per keystroke
  EXPECT_LT(log.checkpoints, 10);     // single digits
}

TEST(Fig8Shape, NviRioCheapDiskExpensive) {
  auto rio = Measure("nvi", "cpvs", ftx::StoreKind::kRio, 600);
  auto disk = Measure("nvi", "cpvs", ftx::StoreKind::kDisk, 600);
  EXPECT_LT(rio.overhead_percent, 3.0);   // paper: ~1%
  EXPECT_GT(disk.overhead_percent, 25.0);  // paper: ~44%
  EXPECT_LT(disk.overhead_percent, 60.0);
}

TEST(Fig8Shape, NviDiskLoggingBand) {
  auto disk_log = Measure("nvi", "cbndvs-log", ftx::StoreKind::kDisk, 600);
  EXPECT_GT(disk_log.overhead_percent, 5.0);   // paper: ~12%
  EXPECT_LT(disk_log.overhead_percent, 20.0);
}

// --- Fig. 8(b): magic ---

TEST(Fig8Shape, MagicCandCommitsSeveralPerCommand) {
  auto cand = Measure("magic", "cand", ftx::StoreKind::kRio, 60);
  auto cpvs = Measure("magic", "cpvs", ftx::StoreKind::kRio, 60);
  EXPECT_GT(cand.checkpoints, cpvs.checkpoints * 3);  // paper ratio ~4.75
  EXPECT_LT(cand.checkpoints, cpvs.checkpoints * 7);
}

TEST(Fig8Shape, MagicLoggingCannotDisarmCbndvs) {
  // Unloggable timeofday/select keep CBNDVS-LOG committing once per command
  // (paper: 185 = CBNDVS's 185).
  auto plain = Measure("magic", "cbndvs", ftx::StoreKind::kRio, 60);
  auto log = Measure("magic", "cbndvs-log", ftx::StoreKind::kRio, 60);
  EXPECT_EQ(plain.checkpoints, log.checkpoints);
}

// --- Fig. 8(c): xpilot ---

TEST(Fig8Shape, XpilotDiscountCheckingHoldsFullSpeed) {
  for (const char* protocol : {"cand", "cpvs", "cpv-2pc"}) {
    auto row = Measure("xpilot", protocol, ftx::StoreKind::kRio, 120);
    EXPECT_GT(row.recoverable_fps, 14.0) << protocol;  // paper: 15 fps
  }
}

TEST(Fig8Shape, XpilotCandUnplayableOnDisk) {
  auto row = Measure("xpilot", "cand", ftx::StoreKind::kDisk, 90);
  EXPECT_LT(row.recoverable_fps, 2.0);  // paper: 0 fps
}

TEST(Fig8Shape, XpilotCpvsDegradedButPlayableOnDisk) {
  auto row = Measure("xpilot", "cpvs", ftx::StoreKind::kDisk, 120);
  EXPECT_GT(row.recoverable_fps, 5.0);  // paper: 8 fps
  EXPECT_LT(row.recoverable_fps, 12.0);
}

// --- Fig. 8(d): treadmarks ---

TEST(Fig8Shape, TreadMarksTwoPcWinsByOrdersOfMagnitude) {
  auto cpvs = Measure("treadmarks", "cpvs", ftx::StoreKind::kRio, 6);
  auto two_pc = Measure("treadmarks", "cpv-2pc", ftx::StoreKind::kRio, 6);
  EXPECT_GT(cpvs.checkpoints, two_pc.checkpoints * 50);  // paper: ~800x
  EXPECT_GT(cpvs.overhead_percent, 20.0);                // paper: 129%
  EXPECT_LT(two_pc.overhead_percent, 5.0);               // paper: 12%
}

TEST(Fig8Shape, TreadMarksCommitOrdering) {
  auto cand = Measure("treadmarks", "cand", ftx::StoreKind::kRio, 6);
  auto cpvs = Measure("treadmarks", "cpvs", ftx::StoreKind::kRio, 6);
  auto log = Measure("treadmarks", "cbndvs-log", ftx::StoreKind::kRio, 6);
  EXPECT_GT(cand.checkpoints, cpvs.checkpoints);
  EXPECT_GT(cpvs.checkpoints, log.checkpoints);
}

// --- Tables 1/2 bands ---

ftx::FaultStudyRow RunStudy(const std::string& app, ftx_fault::FaultType type,
                            ftx::FaultStudyKind kind, int target_crashes, uint64_t seed_base) {
  ftx::FaultStudySpec spec;
  spec.app = app;
  spec.type = type;
  spec.kind = kind;
  spec.target_crashes = target_crashes;
  spec.seed_base = seed_base;
  return ftx::RunFaultStudy(spec);
}

TEST(TableShape, HeapFlipsViolateFarMoreThanStackFlipsForNvi) {
  auto heap = RunStudy("nvi", ftx_fault::FaultType::kHeapBitFlip,
                       ftx::FaultStudyKind::kApplication, 20, 70000);
  auto stack = RunStudy("nvi", ftx_fault::FaultType::kStackBitFlip,
                        ftx::FaultStudyKind::kApplication, 20, 71000);
  EXPECT_GT(heap.violation_fraction, 0.6);   // paper: 83%
  EXPECT_LT(stack.violation_fraction, 0.15);  // paper: 0%
}

TEST(TableShape, OsFaultsHurtNviMoreThanPostgres) {
  double nvi_sum = 0;
  double postgres_sum = 0;
  for (ftx_fault::FaultType type :
       {ftx_fault::FaultType::kStackBitFlip, ftx_fault::FaultType::kDeleteBranch,
        ftx_fault::FaultType::kOffByOne}) {
    nvi_sum += RunStudy("nvi", type, ftx::FaultStudyKind::kOs, 20, 72000)
                   .failed_recovery_fraction;
    postgres_sum += RunStudy("postgres", type, ftx::FaultStudyKind::kOs, 20, 73000)
                        .failed_recovery_fraction;
  }
  EXPECT_GT(nvi_sum, postgres_sum);  // paper: 15% vs 3% average
}

}  // namespace
