// Equivalence and determinism battery for the partitioned event engine
// (src/sim/partition.h, src/sim/simulator.h).
//
// The engine's contract is byte-identity: any shard plan replays the exact
// monolithic event order, because every event carries its global schedule id
// and the merge front picks the globally least (time, id) across shard
// heaps. The tests here pin that contract three ways:
//
//  * a raw-engine property test: randomized event cascades must execute in
//    the identical global order under shard counts {1, 2, 4, N};
//  * a fleet property test: randomized client/server fleets (N <= 16
//    processes, crash injection included) must produce byte-identical
//    visible output, traces, commit/rollback totals, and final segment
//    images under every shard count;
//  * regression pins for the cross-shard FIFO tiebreak (the network's
//    per-channel +1 ns bump must not reorder same-timestamp deliveries from
//    different source shards) and death tests for invalid shard plans.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/apps/fleet.h"
#include "src/common/rng.h"
#include "src/core/computation.h"
#include "src/sim/partition.h"
#include "src/sim/simulator.h"

namespace {

using ftx_sim::Network;
using ftx_sim::ShardPlan;
using ftx_sim::Simulator;
using ftx_sim::ValidateShardPlan;

// --- ShardPlan structure ---

TEST(ShardPlan, UniformDistributesRemainders) {
  ShardPlan plan = ShardPlan::Uniform(10, 3);
  EXPECT_EQ(plan.num_shards(), 3);
  EXPECT_EQ(plan.num_processes(), 10);
  // 10 = 4 + 3 + 3: the first `10 % 3` shards get the extra pid.
  EXPECT_EQ(plan.bounds, (std::vector<int>{0, 4, 7, 10}));
  EXPECT_EQ(plan.ToString(), "{[0,4),[4,7),[7,10)}");
}

TEST(ShardPlan, OwnerOfMapsEveryPid) {
  ShardPlan plan = ShardPlan::Uniform(10, 3);
  for (int pid = 0; pid < 10; ++pid) {
    int owner = plan.OwnerOf(pid);
    EXPECT_GE(pid, plan.ShardBegin(owner));
    EXPECT_LT(pid, plan.ShardEnd(owner));
  }
  EXPECT_FALSE(plan.Covers(-1));
  EXPECT_FALSE(plan.Covers(10));
}

TEST(ShardPlan, SingleIsTheMonolithicPlan) {
  ShardPlan plan = ShardPlan::Single(7);
  EXPECT_EQ(plan.num_shards(), 1);
  EXPECT_EQ(plan.num_processes(), 7);
  EXPECT_TRUE(ValidateShardPlan(plan).ok());
}

TEST(ShardPlan, ValidateRejectsMalformedPlans) {
  ShardPlan no_shards;
  no_shards.bounds = {0};
  EXPECT_FALSE(ValidateShardPlan(no_shards).ok());

  ShardPlan offset_start;
  offset_start.bounds = {1, 5};
  EXPECT_FALSE(ValidateShardPlan(offset_start).ok());

  ShardPlan empty_range;
  empty_range.bounds = {0, 2, 2, 5};
  EXPECT_FALSE(ValidateShardPlan(empty_range).ok());

  ShardPlan decreasing;
  decreasing.bounds = {0, 4, 2};
  EXPECT_FALSE(ValidateShardPlan(decreasing).ok());

  EXPECT_TRUE(ValidateShardPlan(ShardPlan::Uniform(16, 4)).ok());
}

// --- death tests: invalid shard configurations abort loudly ---

TEST(ShardPlanDeathTest, ZeroShardsAborts) {
  EXPECT_DEATH(ShardPlan::Uniform(10, 0), "at least one shard");
}

TEST(ShardPlanDeathTest, MoreShardsThanProcessesAborts) {
  EXPECT_DEATH(ShardPlan::Uniform(4, 8), "more shards than processes");
}

TEST(ShardPlanDeathTest, SimulatorRejectsNonContiguousPlan) {
  ShardPlan plan;
  plan.bounds = {0, 2, 2, 5};  // shard 1 is empty: [2, 2)
  EXPECT_DEATH(Simulator(1, plan), "empty or non-contiguous");
}

// --- engine property: identical global order for every shard count ---

// Runs a randomized event cascade: `num_processes` pseudo-processes firing
// labeled events that reschedule further events onto random pids, all
// deterministic from `seed` given a fixed execution order. Returns the
// executed (time, label) sequence.
std::vector<std::pair<int64_t, int>> RunRandomCascade(uint64_t seed, int num_processes,
                                                      int shards) {
  Simulator sim(seed, ShardPlan::Uniform(num_processes, shards));
  std::vector<std::pair<int64_t, int>> order;
  int next_label = 0;
  int budget = 400;
  // The cascade draws from the simulator's own rng *inside* callbacks: the
  // draws only line up across shard counts if the global execution order is
  // identical, so any divergence amplifies into an immediate mismatch.
  std::function<void(int)> fire = [&](int label) {
    order.emplace_back(sim.Now().nanos(), label);
    int spawn = static_cast<int>(sim.rng().NextBounded(3));
    for (int i = 0; i < spawn && budget > 0; ++i, --budget) {
      int pid = static_cast<int>(sim.rng().NextBounded(static_cast<uint64_t>(num_processes)));
      int64_t delay = static_cast<int64_t>(sim.rng().NextBounded(500));
      int child = next_label++;
      sim.ScheduleAfterFor(pid, ftx::Nanoseconds(delay), [&fire, child] { fire(child); });
    }
  };
  ftx::Rng seeder(seed);
  for (int pid = 0; pid < num_processes; ++pid) {
    int label = next_label++;
    sim.ScheduleAtFor(pid, ftx::TimePoint() + ftx::Nanoseconds(static_cast<int64_t>(
                               seeder.NextBounded(100))),
                      [&fire, label] { fire(label); });
  }
  sim.RunUntilIdle();
  return order;
}

TEST(ShardedSimulator, RandomCascadesReplayMonolithicOrder) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const int num_processes = 2 + static_cast<int>(seed % 15);  // 2..16
    const auto monolithic = RunRandomCascade(seed, num_processes, 1);
    for (int shards : {2, 4, num_processes}) {
      if (shards > num_processes) {
        continue;
      }
      const auto sharded = RunRandomCascade(seed, num_processes, shards);
      ASSERT_EQ(sharded, monolithic)
          << "event order diverged: seed " << seed << ", " << num_processes
          << " processes, " << shards << " shards";
    }
  }
}

TEST(ShardedSimulator, PerShardAccountingSumsToTotals) {
  const int num_processes = 12;
  Simulator sim(7, ShardPlan::Uniform(num_processes, 4));
  EXPECT_EQ(sim.num_shards(), 4);
  for (int pid = 0; pid < num_processes; ++pid) {
    for (int i = 0; i < 5; ++i) {
      sim.ScheduleAfterFor(pid, ftx::Nanoseconds(10 * (pid + i)), [] {});
    }
  }
  sim.RunUntilIdle();
  int64_t per_shard = 0;
  for (int s = 0; s < sim.num_shards(); ++s) {
    per_shard += sim.ShardEventsExecuted(s);
    EXPECT_LE(sim.ShardNow(s).nanos(), sim.Now().nanos());
  }
  EXPECT_EQ(per_shard, sim.events_executed());
  EXPECT_EQ(per_shard, 5LL * num_processes);
}

// --- regression: cross-shard tiebreak uses the global schedule id ---

// Three same-timestamp events on two shards, scheduled in the order
// A(shard 1), B(shard 0), C(shard 1). A merge front keyed by per-shard
// local ids (or scanning shards in index order on ties) would run B first;
// the global schedule id pins A, B, C.
TEST(ShardedSimulator, SameTimestampCrossShardEventsRunInGlobalScheduleOrder) {
  Simulator sim(1, ShardPlan::Uniform(2, 2));
  std::vector<char> order;
  const ftx::TimePoint t = ftx::TimePoint() + ftx::Microseconds(5);
  sim.ScheduleAtFor(1, t, [&] { order.push_back('A'); });
  sim.ScheduleAtFor(0, t, [&] { order.push_back('B'); });
  sim.ScheduleAtFor(1, t, [&] { order.push_back('C'); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

// The network's per-channel FIFO bump (+1 ns when a later send would tie an
// earlier delivery on the same channel) must not reorder deliveries across
// shard boundaries: a bumped delivery from shard 0 and a natural delivery
// from shard 2 land at the same instant on the receiver's shard, and the
// inbox must see them in global send order.
TEST(ShardedSimulator, FifoBumpKeepsCrossShardSendOrder) {
  Simulator sim(1, ShardPlan::Uniform(3, 3));
  ftx_sim::NetworkOptions options;
  options.max_jitter = ftx::Duration();  // deterministic latency
  Network net(&sim, 3, options);

  // Two back-to-back sends on channel (0 -> 1): the second would tie the
  // first, so FIFO bumps it by 1 ns.
  net.Send(0, 1, ftx::Bytes{'A'});
  net.Send(0, 1, ftx::Bytes{'B'});
  // From another shard, a 1-ns-later send of an equal-sized payload: its
  // natural delivery lands exactly on B's bumped instant.
  sim.ScheduleAtFor(2, ftx::TimePoint() + ftx::Nanoseconds(1),
                    [&] { net.Send(2, 1, ftx::Bytes{'C'}); });
  sim.RunUntilIdle();

  std::vector<char> inbox;
  std::vector<int64_t> delivered_at;
  while (auto msg = net.Deliver(1)) {
    inbox.push_back(static_cast<char>(msg->payload[0]));
    delivered_at.push_back(msg->delivered_at.nanos());
  }
  EXPECT_EQ(inbox, (std::vector<char>{'A', 'B', 'C'}));
  ASSERT_EQ(delivered_at.size(), 3u);
  EXPECT_EQ(delivered_at[1], delivered_at[0] + 1);  // the per-channel bump
  EXPECT_EQ(delivered_at[2], delivered_at[1]);      // tied from another shard
}

// --- fleet property: whole computations are byte-identical per shard plan ---

uint64_t Fnv1a(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ data[i]) * 0x100000001b3ULL;
  }
  return hash;
}

// One randomized fleet run, fully serialized: configuration and crash plan
// derive from the seed, so two calls differing only in `shards` must return
// identical strings.
std::string FleetFingerprint(uint64_t seed, int shards, bool lean_trace) {
  ftx::Rng rng(seed);
  ftx_apps::FleetConfig config;
  config.num_servers = 1 + static_cast<int>(rng.NextBounded(3));
  config.num_clients =
      1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(16 - config.num_servers)));
  config.requests_per_client = 1 + static_cast<int>(rng.NextBounded(4));
  config.report_every = 1 + static_cast<int>(rng.NextBounded(8));
  config.client_think = ftx::Microseconds(10 + static_cast<int64_t>(rng.NextBounded(90)));

  ftx::ComputationOptions options;
  options.seed = seed;
  options.protocol = (seed % 2 == 0) ? "cpv-2pc" : "cbndv-2pc";
  options.store = ftx::StoreKind::kRio;
  options.shards = shards;
  options.lean_trace = lean_trace;
  options.recovery_delay = ftx::Microseconds(100);
  ftx::Computation computation(options, ftx_apps::MakeFleetApps(config));

  // Crash injection on half the seeds: one or two stop failures at random
  // times inside the fleet's active window.
  if (rng.NextBernoulli(0.5)) {
    const int crashes = 1 + static_cast<int>(rng.NextBounded(2));
    for (int i = 0; i < crashes; ++i) {
      int pid = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config.num_processes())));
      int64_t at_us = 20 + static_cast<int64_t>(rng.NextBounded(400));
      computation.ScheduleStopFailure(pid, ftx::TimePoint() + ftx::Microseconds(at_us),
                                      ftx::Microseconds(100));
    }
  }
  ftx::ComputationResult result = computation.Run();

  std::string fp;
  fp += "all_done=";
  fp += std::to_string(result.all_done);
  fp += " end=";
  fp += std::to_string(result.end_time.nanos());
  fp += " commits=";
  fp += std::to_string(result.total_commits);
  fp += " events=";
  fp += std::to_string(result.total_events);
  fp += " rollbacks=";
  fp += std::to_string(result.total_rollbacks);
  fp += "\n";
  // The user-observed visible stream, globally ordered: the strongest
  // external observable.
  for (const ftx_rec::VisibleEvent& visible : computation.recorder().events()) {
    fp += "v p";
    fp += std::to_string(visible.process);
    fp += " t";
    fp += std::to_string(visible.time.nanos());
    fp += " [";
    for (uint8_t byte : visible.payload) {
      fp += std::to_string(byte);
      fp += ",";
    }
    fp += "]\n";
  }
  // Per-process executed-event logs (the commit sequence rides in here as
  // kCommit events with their atomic 2PC group ids).
  for (int pid = 0; pid < config.num_processes(); ++pid) {
    fp += "p";
    fp += std::to_string(pid);
    fp += ":";
    for (const ftx_sm::TraceEvent& event : computation.trace().ProcessEvents(pid)) {
      fp += " ";
      fp += std::to_string(static_cast<int>(event.kind));
      fp += "/";
      fp += std::to_string(event.message_id);
      fp += "/";
      fp += std::to_string(event.logged);
      fp += "/";
      fp += std::to_string(event.atomic_group);
    }
    fp += "\n";
  }
  // Final committed segment images.
  for (int pid = 0; pid < config.num_processes(); ++pid) {
    const ftx_vista::Segment& segment = computation.runtime(pid).segment();
    fp += "seg";
    fp += std::to_string(pid);
    fp += "=";
    fp += std::to_string(Fnv1a(0xcbf29ce484222325ULL, segment.data(), segment.size()));
    fp += "\n";
  }
  return fp;
}

TEST(ShardedFleet, EveryShardCountMatchesMonolithic) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    const std::string monolithic = FleetFingerprint(seed, 1, /*lean_trace=*/false);
    // Derive the fleet size the same way FleetFingerprint does, to know N.
    ftx::Rng rng(seed);
    const int servers = 1 + static_cast<int>(rng.NextBounded(3));
    const int clients = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(16 - servers)));
    const int num_processes = servers + clients;
    std::set<int> shard_counts = {2, 4, num_processes};
    for (int shards : shard_counts) {
      if (shards <= 1 || shards > num_processes) {
        continue;
      }
      ASSERT_EQ(FleetFingerprint(seed, shards, /*lean_trace=*/false), monolithic)
          << "fleet diverged: seed " << seed << ", " << num_processes << " processes, "
          << shards << " shards";
    }
  }
}

TEST(ShardedFleet, LeanTraceChangesNoSimulatedByte) {
  // The lean (clock-free) trace mode drops only observer state; visible
  // output, event logs, commit totals, and segments must not move.
  for (uint64_t seed : {3u, 8u, 21u}) {
    EXPECT_EQ(FleetFingerprint(seed, 4, /*lean_trace=*/true),
              FleetFingerprint(seed, 4, /*lean_trace=*/false))
        << "lean trace perturbed simulated state at seed " << seed;
  }
}

TEST(ShardedFleet, AuditChangesNoSimulatedByte) {
  // The causal audit threads through the sharded engine unchanged: audited
  // and unaudited runs must agree on every simulated observable.
  ftx_apps::FleetConfig config;
  config.num_servers = 2;
  config.num_clients = 10;
  config.requests_per_client = 3;
  config.report_every = 4;
  auto run = [&](bool audit) {
    ftx::ComputationOptions options;
    options.seed = 5;
    options.protocol = "cbndv-2pc";
    options.shards = 4;
    options.audit = audit;
    ftx::Computation computation(options, ftx_apps::MakeFleetApps(config));
    computation.ScheduleStopFailure(3, ftx::TimePoint() + ftx::Microseconds(120),
                                    ftx::Microseconds(100));
    ftx::ComputationResult result = computation.Run();
    std::string fp = std::to_string(result.total_commits) + "/" +
                     std::to_string(result.total_rollbacks) + "/" +
                     std::to_string(result.end_time.nanos()) + "/" +
                     std::to_string(result.total_events);
    for (const ftx_rec::VisibleEvent& visible : computation.recorder().events()) {
      fp += " " + std::to_string(visible.process) + "@" + std::to_string(visible.time.nanos());
    }
    for (int pid = 0; pid < config.num_processes(); ++pid) {
      const ftx_vista::Segment& segment = computation.runtime(pid).segment();
      fp += " " + std::to_string(Fnv1a(0xcbf29ce484222325ULL, segment.data(), segment.size()));
    }
    return fp;
  };
  EXPECT_EQ(run(false), run(true));
}

// --- fleet workload sanity: the ledger is exactly-once at small scale ---

TEST(ShardedFleet, ExactlyOnceUnderCrashes) {
  ftx_apps::FleetConfig config;
  config.num_servers = 2;
  config.num_clients = 12;
  config.requests_per_client = 4;
  config.report_every = 4;
  ftx::ComputationOptions options;
  options.seed = 77;
  options.protocol = "cbndv-2pc";
  options.shards = 7;  // deliberately uneven: 14 processes over 7 shards
  options.recovery_delay = ftx::Microseconds(100);
  ftx::Computation computation(options, ftx_apps::MakeFleetApps(config));
  computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(90),
                                  ftx::Microseconds(100));
  computation.ScheduleStopFailure(5, ftx::TimePoint() + ftx::Microseconds(150),
                                  ftx::Microseconds(100));
  ftx::ComputationResult result = computation.Run();
  ASSERT_TRUE(result.all_done);

  int64_t applied = 0;
  int64_t value_sum = 0;
  for (int s = 0; s < config.num_servers; ++s) {
    applied += ftx_apps::FleetServer::AppliedCount(computation.runtime(s));
    value_sum += ftx_apps::FleetServer::ValueSum(computation.runtime(s));
  }
  EXPECT_EQ(applied, static_cast<int64_t>(config.num_clients) * config.requests_per_client);
  EXPECT_EQ(value_sum, ftx_apps::FleetExpectedValueSum(config));
  for (int c = 0; c < config.num_clients; ++c) {
    EXPECT_EQ(ftx_apps::FleetClient::AckedCount(computation.runtime(config.num_servers + c)),
              config.requests_per_client)
        << "client " << c;
  }
}

}  // namespace
