// Tests for the discrete-event simulator, the network (including recovery
// buffers), and the simulated kernel (including syscall-replay
// reconstruction).

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/env/sim_env.h"
#include "src/sim/kernel.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace {

using ftx_sim::KernelSim;
using ftx_sim::Network;
using ftx_sim::Simulator;

// --- Simulator ---

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAfter(ftx::Milliseconds(30), [&] { order.push_back(3); });
  sim.ScheduleAfter(ftx::Milliseconds(10), [&] { order.push_back(1); });
  sim.ScheduleAfter(ftx::Milliseconds(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now().nanos(), ftx::Milliseconds(30).nanos());
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAfter(ftx::Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CallbacksMayScheduleMore) {
  Simulator sim(1);
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 10) {
      sim.ScheduleAfter(ftx::Microseconds(5), chain);
    }
  };
  sim.ScheduleAfter(ftx::Microseconds(5), chain);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.Now().nanos(), ftx::Microseconds(50).nanos());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.ScheduleAfter(ftx::Milliseconds(1), [&] { ++fired; });
  sim.ScheduleAfter(ftx::Milliseconds(100), [&] { ++fired; });
  sim.RunUntil(ftx::TimePoint() + ftx::Milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.HasPending());
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    uint64_t acc = 0;
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleAfter(ftx::Nanoseconds(static_cast<int64_t>(sim.rng().NextBounded(1000))),
                        [&acc, &sim] { acc = acc * 31 + static_cast<uint64_t>(sim.Now().nanos()); });
    }
    sim.RunUntilIdle();
    return acc;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --- Network ---

TEST(Network, DeliversAfterLatency) {
  Simulator sim(1);
  ftx_sim::NetworkOptions options;
  options.max_jitter = ftx::Duration();  // deterministic latency
  Network net(&sim, 2, options);
  net.Send(0, 1, ftx::Bytes{1, 2, 3});
  EXPECT_FALSE(net.HasPending(1));
  sim.RunUntilIdle();
  ASSERT_TRUE(net.HasPending(1));
  auto msg = net.Deliver(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, (ftx::Bytes{1, 2, 3}));
  EXPECT_GE((msg->delivered_at - msg->sent_at).nanos(), options.base_latency.nanos());
}

TEST(Network, FifoPerSenderReceiverPair) {
  Simulator sim(1);
  ftx_sim::NetworkOptions options;
  options.max_jitter = ftx::Duration();
  Network net(&sim, 2, options);
  for (uint8_t i = 0; i < 10; ++i) {
    net.Send(0, 1, ftx::Bytes{i});
  }
  sim.RunUntilIdle();
  for (uint8_t i = 0; i < 10; ++i) {
    auto msg = net.Deliver(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload[0], i);
  }
}

TEST(Network, ArrivalCallbackFires) {
  Simulator sim(1);
  Network net(&sim, 2);
  int arrivals = 0;
  net.SetArrivalCallback(1, [&] { ++arrivals; });
  net.Send(0, 1, ftx::Bytes{9});
  net.Send(0, 1, ftx::Bytes{8});
  sim.RunUntilIdle();
  EXPECT_EQ(arrivals, 2);
}

TEST(Network, RecoveryBufferRedeliversAfterRollback) {
  Simulator sim(1);
  Network net(&sim, 2);
  net.Send(0, 1, ftx::Bytes{1});
  net.Send(0, 1, ftx::Bytes{2});
  sim.RunUntilIdle();

  auto first = net.Deliver(1);
  ASSERT_TRUE(first.has_value());
  // Receiver rolls back before committing: the consumed message must be
  // redelivered ahead of the still-queued one.
  net.RequeueRetained(1);
  auto again = net.Deliver(1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->payload, (ftx::Bytes{1}));
  auto second = net.Deliver(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, (ftx::Bytes{2}));
}

TEST(Network, CommitReleasesRetainedMessages) {
  Simulator sim(1);
  Network net(&sim, 2);
  net.Send(0, 1, ftx::Bytes{1});
  sim.RunUntilIdle();
  (void)net.Deliver(1);
  net.ReleaseAllDelivered(1);  // commit covers the consumed message
  net.RequeueRetained(1);      // rollback to that commit
  EXPECT_FALSE(net.HasPending(1));  // nothing to redeliver
}

TEST(Network, DropNewestRetainedForLoggedReceives) {
  Simulator sim(1);
  Network net(&sim, 2);
  net.Send(0, 1, ftx::Bytes{1});
  sim.RunUntilIdle();
  auto msg = net.Deliver(1);
  ASSERT_TRUE(msg.has_value());
  net.DropNewestRetained(1, msg->id);  // the ND log owns redelivery now
  net.RequeueRetained(1);
  EXPECT_FALSE(net.HasPending(1));
}

TEST(Network, TransitTimeGrowsWithSize) {
  Simulator sim(1);
  Network net(&sim, 2);
  EXPECT_LT(net.TransitTime(64).nanos(), net.TransitTime(64 * 1024).nanos());
}

// --- KernelSim ---

TEST(Kernel, OpenAssignsLowestFreeFd) {
  Simulator sim(1);
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);
  auto fd0 = kernel.Open(0, "a", false);
  auto fd1 = kernel.Open(0, "b", true);
  ASSERT_TRUE(fd0.ok());
  ASSERT_TRUE(fd1.ok());
  EXPECT_EQ(*fd0, 0);
  EXPECT_EQ(*fd1, 1);
  ASSERT_TRUE(kernel.Close(0, *fd0).ok());
  auto fd2 = kernel.Open(0, "c", false);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(*fd2, 0);  // reuses the freed slot
}

TEST(Kernel, OpenFailsWhenTableFull) {
  Simulator sim(1);
  ftx_sim::KernelLimits limits;
  limits.max_open_files = 2;
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1, limits);
  ASSERT_TRUE(kernel.Open(0, "a", false).ok());
  ASSERT_TRUE(kernel.Open(0, "b", false).ok());
  auto fd = kernel.Open(0, "c", false);
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), ftx::StatusCode::kResourceExhausted);
}

TEST(Kernel, WriteConsumesDiskAndFailsWhenFull) {
  Simulator sim(1);
  ftx_sim::KernelLimits limits;
  limits.disk_blocks_total = 2;
  limits.block_size = 4096;
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1, limits);
  auto fd = kernel.Open(0, "f", true);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(kernel.Write(0, *fd, 4096).ok());
  EXPECT_TRUE(kernel.Write(0, *fd, 4096).ok());
  auto full = kernel.Write(0, *fd, 1);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), ftx::StatusCode::kResourceExhausted);
}

TEST(Kernel, WriteToReadOnlyFails) {
  Simulator sim(1);
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);
  auto fd = kernel.Open(0, "f", /*writable=*/false);
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(kernel.Write(0, *fd, 100).ok());
}

TEST(Kernel, BindRejectsDuplicatePort) {
  Simulator sim(1);
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);
  EXPECT_TRUE(kernel.Bind(0, 8080).ok());
  EXPECT_FALSE(kernel.Bind(0, 8080).ok());
}

TEST(Kernel, GetTimeOfDayIsTransientNd) {
  Simulator sim(1);
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);
  // Two reads at the same simulated instant still differ (RNG
  // perturbation): the transient non-determinism the theory relies on.
  ftx::TimePoint a = kernel.GetTimeOfDay(0);
  ftx::TimePoint b = kernel.GetTimeOfDay(0);
  EXPECT_NE(a.nanos(), b.nanos());
}

TEST(Kernel, ReconstructionReplaysToIdenticalState) {
  Simulator sim(1);
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);
  ASSERT_TRUE(kernel.Open(0, "log", true).ok());
  ASSERT_TRUE(kernel.Bind(0, 9000).ok());
  ASSERT_TRUE(kernel.Write(0, 0, 10000).ok());
  ASSERT_TRUE(kernel.Seek(0, 0, 512).ok());

  size_t capture = kernel.RecordCount(0);
  ftx_sim::KernelState at_commit = kernel.SnapshotFor(0);

  // Post-commit activity that must be rolled back.
  ASSERT_TRUE(kernel.Open(0, "tmp", true).ok());
  ASSERT_TRUE(kernel.Write(0, 1, 8192).ok());

  ASSERT_TRUE(kernel.ReconstructFor(0, capture).ok());
  EXPECT_EQ(kernel.SnapshotFor(0), at_commit);
  EXPECT_EQ(kernel.RecordCount(0), capture);
}

class KernelReplayProperty : public ::testing::TestWithParam<uint64_t> {};

// Property: for any random syscall history, reconstruction at any capture
// point reproduces the exact kernel state observed at that point.
TEST_P(KernelReplayProperty, RandomHistoriesReplayExactly) {
  ftx::Rng rng(GetParam());
  Simulator sim(GetParam());
  ftx::env::SimClock clock(&sim);
  KernelSim kernel(&clock, 1);

  std::vector<int> open_fds;
  std::vector<size_t> capture_points;
  std::vector<ftx_sim::KernelState> snapshots;

  for (int step = 0; step < 120; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.35) {
      auto fd = kernel.Open(0, "f" + std::to_string(step), rng.NextBernoulli(0.7));
      if (fd.ok()) {
        open_fds.push_back(*fd);
      }
    } else if (roll < 0.5 && !open_fds.empty()) {
      size_t pick = rng.NextBounded(open_fds.size());
      (void)kernel.Close(0, open_fds[pick]);
      open_fds.erase(open_fds.begin() + static_cast<int64_t>(pick));
    } else if (roll < 0.75 && !open_fds.empty()) {
      (void)kernel.Write(0, open_fds[rng.NextBounded(open_fds.size())],
                         static_cast<int64_t>(rng.NextBounded(10000)));
    } else if (roll < 0.9 && !open_fds.empty()) {
      (void)kernel.Seek(0, open_fds[rng.NextBounded(open_fds.size())],
                        static_cast<int64_t>(rng.NextBounded(100000)));
    } else {
      (void)kernel.Bind(0, static_cast<uint16_t>(1024 + rng.NextBounded(100)));
    }
    if (rng.NextBernoulli(0.1)) {
      capture_points.push_back(kernel.RecordCount(0));
      snapshots.push_back(kernel.SnapshotFor(0));
    }
  }

  // Reconstruct to the most recent capture point and compare; repeat
  // backwards through earlier capture points.
  for (size_t i = capture_points.size(); i-- > 0;) {
    ASSERT_TRUE(kernel.ReconstructFor(0, capture_points[i]).ok());
    EXPECT_EQ(kernel.SnapshotFor(0), snapshots[i]) << "capture point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelReplayProperty, ::testing::Range<uint64_t>(1, 13));

}  // namespace
