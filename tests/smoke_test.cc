// End-to-end smoke tests: every workload runs to completion in baseline and
// recoverable modes with identical visible output, and survives a stop
// failure with consistent recovery.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/recovery/consistency.h"

namespace {

using ftx::RunSpec;

TEST(Smoke, NviBaselineCompletes) {
  RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 200;
  spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput out = ftx::RunExperiment(spec);
  EXPECT_TRUE(out.result.all_done);
  EXPECT_GT(out.outputs.size(), 190u);
  EXPECT_EQ(out.checkpoints, 0);
}

TEST(Smoke, NviRecoverableMatchesBaselineOutput) {
  RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 200;
  spec.protocol = "cpvs";
  spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput baseline = ftx::RunExperiment(spec);
  spec.mode = ftx_dc::RuntimeMode::kRecoverable;
  ftx::RunOutput recoverable = ftx::RunExperiment(spec);

  ASSERT_TRUE(baseline.result.all_done);
  ASSERT_TRUE(recoverable.result.all_done);
  EXPECT_GT(recoverable.checkpoints, 100);
  ftx_rec::ConsistencyResult consistency =
      ftx_rec::CheckConsistentRecovery(baseline.outputs, recoverable.outputs, 1);
  EXPECT_TRUE(consistency.consistent) << consistency.diagnostic;
  EXPECT_EQ(consistency.duplicates_tolerated, 0);
}

TEST(Smoke, NviStopFailureRecoversConsistently) {
  RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 200;
  spec.protocol = "cpvs";
  ftx::RecoveryCheck check =
      ftx::VerifyConsistentRecovery(spec, [](ftx::Computation& computation) {
        computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(6.0));
      });
  EXPECT_TRUE(check.completed) << check.diagnostic;
  EXPECT_TRUE(check.consistent) << check.diagnostic;
  EXPECT_GE(check.rollbacks, 1);
}

TEST(Smoke, AllWorkloadsCompleteRecoverable) {
  for (const char* workload : {"nvi", "magic", "xpilot", "treadmarks", "postgres"}) {
    RunSpec spec;
    spec.workload = workload;
    spec.scale = workload == std::string("treadmarks") ? 4
                 : workload == std::string("xpilot")   ? 60
                                                       : 80;
    spec.protocol = "cbndvs";
    ftx::RunOutput out = ftx::RunExperiment(spec);
    EXPECT_TRUE(out.result.all_done) << workload;
    EXPECT_GT(out.outputs.size(), 0u) << workload;
  }
}

}  // namespace
