// Tests for the theory substrate: vector clocks, traces + happens-before,
// and the state-machine graph.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/statemachine/graph.h"
#include "src/statemachine/trace.h"
#include "src/statemachine/trace_format.h"
#include "src/statemachine/vector_clock.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::EventRef;
using ftx_sm::Trace;
using ftx_sm::VectorClock;

// --- VectorClock ---

TEST(VectorClock, TickIncrementsOwnComponent) {
  VectorClock clock(3);
  clock.Tick(1);
  clock.Tick(1);
  EXPECT_EQ(clock.Get(0), 0);
  EXPECT_EQ(clock.Get(1), 2);
}

TEST(VectorClock, MergeTakesMaximum) {
  VectorClock a(3);
  a.Set(0, 5);
  a.Set(1, 1);
  VectorClock b(3);
  b.Set(0, 2);
  b.Set(2, 7);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(0), 5);
  EXPECT_EQ(a.Get(1), 1);
  EXPECT_EQ(a.Get(2), 7);
}

TEST(VectorClock, HappensBeforeIsStrict) {
  VectorClock a(2);
  a.Set(0, 1);
  VectorClock b = a;
  EXPECT_FALSE(ftx_sm::HappensBefore(a, b));  // equal clocks
  b.Set(1, 1);
  EXPECT_TRUE(ftx_sm::HappensBefore(a, b));
  EXPECT_FALSE(ftx_sm::HappensBefore(b, a));
}

TEST(VectorClock, ConcurrentClocks) {
  VectorClock a(2);
  a.Set(0, 1);
  VectorClock b(2);
  b.Set(1, 1);
  EXPECT_TRUE(ftx_sm::Concurrent(a, b));
  EXPECT_FALSE(ftx_sm::HappensBefore(a, b));
  EXPECT_FALSE(ftx_sm::HappensBefore(b, a));
}

TEST(VectorClock, GrowsOnDemand) {
  VectorClock clock;
  clock.Set(5, 3);
  EXPECT_EQ(clock.Get(5), 3);
  EXPECT_EQ(clock.Get(2), 0);
  EXPECT_EQ(clock.Get(9), 0);
}

// --- Trace happens-before ---

TEST(Trace, ProgramOrderIsHappensBefore) {
  Trace trace(1);
  EventRef a = trace.Append(0, EventKind::kInternal);
  EventRef b = trace.Append(0, EventKind::kInternal);
  EXPECT_TRUE(trace.EventHappensBefore(a, b));
  EXPECT_FALSE(trace.EventHappensBefore(b, a));
  EXPECT_FALSE(trace.EventHappensBefore(a, a));
}

TEST(Trace, MessageCreatesCrossProcessEdge) {
  Trace trace(2);
  EventRef before_send = trace.Append(0, EventKind::kTransientNd);
  EventRef send = trace.Append(0, EventKind::kSend, /*message_id=*/7);
  EventRef recv = trace.Append(1, EventKind::kReceive, /*message_id=*/7);
  EventRef after_recv = trace.Append(1, EventKind::kVisible);

  EXPECT_TRUE(trace.EventHappensBefore(before_send, recv));
  EXPECT_TRUE(trace.EventHappensBefore(send, after_recv));
  EXPECT_TRUE(trace.CausallyPrecedes(before_send, after_recv));
}

TEST(Trace, IndependentProcessesAreConcurrent) {
  Trace trace(2);
  EventRef a = trace.Append(0, EventKind::kInternal);
  EventRef b = trace.Append(1, EventKind::kInternal);
  EXPECT_FALSE(trace.EventHappensBefore(a, b));
  EXPECT_FALSE(trace.EventHappensBefore(b, a));
}

TEST(Trace, NoBackwardEdgeFromReceive) {
  Trace trace(2);
  trace.Append(0, EventKind::kSend, 1);
  trace.Append(1, EventKind::kReceive, 1);
  EventRef later_on_sender = trace.Append(0, EventKind::kInternal);
  EventRef recv_side = trace.Append(1, EventKind::kInternal);
  // The sender's post-send events do not precede the receiver's events.
  EXPECT_FALSE(trace.EventHappensBefore(later_on_sender, recv_side));
}

TEST(Trace, FirstCommitAfterFindsNextCommit) {
  Trace trace(1);
  trace.Append(0, EventKind::kInternal);             // 0
  trace.Append(0, EventKind::kCommit);               // 1
  trace.Append(0, EventKind::kTransientNd);          // 2
  trace.Append(0, EventKind::kCommit);               // 3

  auto commit = trace.FirstCommitAfter(0, 0);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->index, 1);
  commit = trace.FirstCommitAfter(0, 1);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->index, 3);
  EXPECT_FALSE(trace.FirstCommitAfter(0, 3).has_value());
}

TEST(Trace, LastCommitAtOrBefore) {
  Trace trace(1);
  trace.Append(0, EventKind::kCommit);       // 0
  trace.Append(0, EventKind::kInternal);     // 1
  trace.Append(0, EventKind::kCommit);       // 2
  trace.Append(0, EventKind::kInternal);     // 3

  auto commit = trace.LastCommitAtOrBefore(0, 3);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->index, 2);
  commit = trace.LastCommitAtOrBefore(0, 1);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->index, 0);
}

TEST(Trace, FaultActivationMarking) {
  Trace trace(1);
  EventRef e = trace.Append(0, EventKind::kInternal);
  EXPECT_FALSE(trace.event(e).fault_activation);
  trace.MarkFaultActivation(e);
  EXPECT_TRUE(trace.event(e).fault_activation);
}

TEST(Trace, DuplicateReceiveOfSameMessageAllowed) {
  // Reexecution after rollback re-receives a redelivered message: the trace
  // records both receive events against the same send.
  Trace trace(2);
  trace.Append(0, EventKind::kSend, 5);
  trace.Append(1, EventKind::kReceive, 5);
  trace.Append(1, EventKind::kReceive, 5);  // redelivery
  EXPECT_EQ(trace.NumEvents(1), 2);
}

// --- StateMachineGraph ---

TEST(Graph, AddStatesAndEdges) {
  ftx_sm::StateMachineGraph graph;
  ftx_sm::StateId s0 = graph.AddState();
  ftx_sm::StateId s1 = graph.AddState();
  ftx_sm::EdgeId e = graph.AddEdge(s0, s1, EventKind::kInternal, "go");
  EXPECT_EQ(graph.num_states(), 2);
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.edge(e).label, "go");
  ASSERT_EQ(graph.OutEdges(s0).size(), 1u);
  EXPECT_TRUE(graph.OutEdges(s1).empty());
}

TEST(Graph, ValidDeterminismLabels) {
  ftx_sm::StateMachineGraph graph;
  graph.EnsureStates(4);
  graph.AddEdge(0, 1, EventKind::kTransientNd);
  graph.AddEdge(0, 2, EventKind::kFixedNd);
  graph.AddEdge(1, 3, EventKind::kInternal);
  std::string diagnostic;
  EXPECT_TRUE(graph.ValidateDeterminismLabels(&diagnostic)) << diagnostic;
}

TEST(Graph, InvalidDeterminismLabelsDetected) {
  ftx_sm::StateMachineGraph graph;
  graph.EnsureStates(3);
  graph.AddEdge(0, 1, EventKind::kInternal);  // deterministic...
  graph.AddEdge(0, 2, EventKind::kTransientNd);  // ...but state 0 branches
  std::string diagnostic;
  EXPECT_FALSE(graph.ValidateDeterminismLabels(&diagnostic));
  EXPECT_FALSE(diagnostic.empty());
}

TEST(Graph, CrashEdgeDoesNotCountTowardBranching) {
  ftx_sm::StateMachineGraph graph;
  graph.EnsureStates(3);
  graph.AddEdge(0, 1, EventKind::kInternal);
  graph.AddEdge(0, 2, EventKind::kCrash);  // exogenous
  std::string diagnostic;
  EXPECT_TRUE(graph.ValidateDeterminismLabels(&diagnostic)) << diagnostic;
}

TEST(TraceFormat, RendersEventsAndFlags) {
  Trace trace(2);
  trace.Append(0, EventKind::kTransientNd, -1, false, "flip");
  trace.Append(0, EventKind::kSend, 3);
  trace.Append(1, EventKind::kReceive, 3, /*logged=*/true, "recv");
  auto activation = trace.Append(1, EventKind::kInternal);
  trace.MarkFaultActivation(activation);
  trace.Append(1, EventKind::kCommit, -1, false, "", /*atomic_group=*/2);

  std::string text = ftx_sm::FormatTrace(trace);
  EXPECT_NE(text.find("transient_nd"), std::string::npos);
  EXPECT_NE(text.find("m=3"), std::string::npos);
  EXPECT_NE(text.find("[logged]"), std::string::npos);
  EXPECT_NE(text.find("[FAULT-ACTIVATION]"), std::string::npos);
  EXPECT_NE(text.find("[round 2]"), std::string::npos);
  EXPECT_NE(text.find("\"flip\""), std::string::npos);
}

TEST(TraceFormat, FiltersAndTruncates) {
  Trace trace(2);
  for (int i = 0; i < 10; ++i) {
    trace.Append(0, EventKind::kInternal);
    trace.Append(1, EventKind::kVisible);
  }
  ftx_sm::TraceFormatOptions options;
  options.process = 1;
  options.include_internal = false;
  options.max_events = 3;
  std::string text = ftx_sm::FormatTrace(trace, options);
  EXPECT_EQ(text.find("p0#"), std::string::npos);
  EXPECT_NE(text.find("truncated"), std::string::npos);
  // Exactly 3 rendered lines plus the truncation marker.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TraceFormat, SummaryCountsByKind) {
  Trace trace(1);
  trace.Append(0, EventKind::kTransientNd);
  trace.Append(0, EventKind::kVisible);
  trace.Append(0, EventKind::kVisible);
  trace.Append(0, EventKind::kCommit);
  std::string summary = ftx_sm::SummarizeTrace(trace);
  EXPECT_NE(summary.find("4 events"), std::string::npos);
  EXPECT_NE(summary.find("transient 1"), std::string::npos);
  EXPECT_NE(summary.find("visible 2"), std::string::npos);
  EXPECT_NE(summary.find("commit 1"), std::string::npos);
}

TEST(EventKinds, Classification) {
  EXPECT_TRUE(ftx_sm::IsNonDeterministic(EventKind::kTransientNd));
  EXPECT_TRUE(ftx_sm::IsNonDeterministic(EventKind::kFixedNd));
  EXPECT_TRUE(ftx_sm::IsNonDeterministic(EventKind::kReceive));
  EXPECT_FALSE(ftx_sm::IsNonDeterministic(EventKind::kSend));
  EXPECT_FALSE(ftx_sm::IsNonDeterministic(EventKind::kVisible));
  EXPECT_FALSE(ftx_sm::IsNonDeterministic(EventKind::kCommit));

  EXPECT_TRUE(ftx_sm::IsTransientNonDeterministic(EventKind::kTransientNd));
  EXPECT_TRUE(ftx_sm::IsTransientNonDeterministic(EventKind::kReceive));
  EXPECT_FALSE(ftx_sm::IsTransientNonDeterministic(EventKind::kFixedNd));
}

}  // namespace
