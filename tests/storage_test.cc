// Tests for the storage substrate: disk model, undo/redo logs, stable-store
// cost policies.

#include <gtest/gtest.h>

#include "src/storage/commit_pipeline.h"
#include "src/storage/disk_model.h"
#include "src/storage/log_image.h"
#include "src/storage/redo_log.h"
#include "src/storage/stable_store.h"
#include "src/storage/undo_log.h"
#include "src/storage/write_journal.h"

namespace {

// --- DiskModel ---

TEST(DiskModel, RandomAccessPaysSeek) {
  ftx_store::DiskModel disk;
  const auto& p = disk.parameters();
  ftx::Duration far = disk.Write(500 * 1024 * 1024, 4096);
  EXPECT_GE(far.nanos(), (p.average_seek + p.half_rotation).nanos());
}

TEST(DiskModel, SequentialAccessSkipsSeek) {
  ftx_store::DiskModel disk;
  const auto& p = disk.parameters();
  disk.Write(0, 4096);
  ftx::Duration next = disk.Write(4096, 4096);  // head is already there
  EXPECT_LT(next.nanos(), p.average_seek.nanos());
}

TEST(DiskModel, TransferScalesWithBytes) {
  ftx_store::DiskModel disk;
  ftx::Duration small = disk.Append(4096);
  ftx::Duration large = disk.Append(1 << 20);
  EXPECT_GT(large.nanos(), small.nanos());
}

TEST(DiskModel, TracksStatistics) {
  ftx_store::DiskModel disk;
  disk.Write(0, 100);
  disk.Read(50, 200);
  disk.Append(300);
  EXPECT_EQ(disk.total_ios(), 3);
  EXPECT_EQ(disk.total_bytes(), 600);
}

// --- UndoLog ---

TEST(UndoLog, ApplyReverseRestoresOriginal) {
  std::vector<uint8_t> buffer(64, 0);
  ftx_store::UndoLog log;

  log.RecordBeforeImage(0, buffer.data(), 16);  // before-image: zeros
  std::fill(buffer.begin(), buffer.begin() + 16, 0xaa);
  log.RecordBeforeImage(16, buffer.data() + 16, 16);
  std::fill(buffer.begin() + 16, buffer.begin() + 32, 0xbb);

  log.ApplyReverseInto(buffer.data(), buffer.size());
  EXPECT_EQ(buffer, std::vector<uint8_t>(64, 0));
  EXPECT_TRUE(log.empty());
}

TEST(UndoLog, ReverseOrderMattersForOverlaps) {
  // Two records touching the same range: the OLDEST before-image must win.
  std::vector<uint8_t> buffer(8, 1);
  ftx_store::UndoLog log;
  log.RecordBeforeImage(0, buffer.data(), 8);  // image: all 1s
  std::fill(buffer.begin(), buffer.end(), 2);
  log.RecordBeforeImage(0, buffer.data(), 8);  // image: all 2s
  std::fill(buffer.begin(), buffer.end(), 3);

  log.ApplyReverseInto(buffer.data(), buffer.size());
  EXPECT_EQ(buffer, std::vector<uint8_t>(8, 1));
}

TEST(UndoLog, DiscardForgetsEverything) {
  std::vector<uint8_t> buffer(8, 1);
  ftx_store::UndoLog log;
  log.RecordBeforeImage(0, buffer.data(), 8);
  std::fill(buffer.begin(), buffer.end(), 9);
  log.Discard();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.byte_size(), 0);
  log.ApplyReverseInto(buffer.data(), buffer.size());  // no-op
  EXPECT_EQ(buffer, std::vector<uint8_t>(8, 9));
}

TEST(UndoLog, TracksByteSize) {
  std::vector<uint8_t> buffer(128, 0);
  ftx_store::UndoLog log;
  log.RecordBeforeImage(0, buffer.data(), 100);
  log.RecordBeforeImage(100, buffer.data(), 28);
  EXPECT_EQ(log.byte_size(), 128);
  EXPECT_EQ(log.record_count(), 2u);
}

TEST(UndoLog, PooledSlotsAreReusedAcrossEpochs) {
  // Steady state — the same number of slot-sized regions logged every
  // commit epoch — must not allocate new slots after the first epoch, and
  // reused slots must never leak a previous epoch's before-image.
  constexpr size_t kSlot = 64;
  std::vector<uint8_t> buffer(4 * kSlot, 0);
  ftx_store::UndoLog log(kSlot);

  for (uint8_t epoch = 1; epoch <= 10; ++epoch) {
    for (size_t page = 0; page < 4; ++page) {
      log.RecordBeforeImage(static_cast<int64_t>(page * kSlot), buffer.data() + page * kSlot,
                            kSlot);
      std::fill(buffer.begin() + page * kSlot, buffer.begin() + (page + 1) * kSlot, epoch);
    }
    EXPECT_EQ(log.allocated_slots(), 4u) << "epoch " << int(epoch);
    if (epoch % 2 == 0) {
      // Abort path: before-images of THIS epoch come back, not stale ones.
      std::vector<uint8_t> expected(buffer.size(), static_cast<uint8_t>(epoch - 1));
      log.ApplyReverseInto(buffer.data(), buffer.size());
      EXPECT_EQ(buffer, expected) << "epoch " << int(epoch);
      std::fill(buffer.begin(), buffer.end(), epoch);
    } else {
      log.Discard();  // commit path: slots return to the free list
    }
    EXPECT_EQ(log.free_slots(), 4u);
    EXPECT_TRUE(log.empty());
  }
  EXPECT_EQ(log.allocated_slots(), 4u);
}

TEST(UndoLog, OddSizedRegionsUseFallback) {
  std::vector<uint8_t> buffer(100, 7);
  ftx_store::UndoLog log(64);
  log.RecordBeforeImage(0, buffer.data(), 100);  // straddles a slot window
  EXPECT_EQ(log.allocated_slots(), 0u);
  EXPECT_EQ(log.records()[0].slot, -1);
  std::fill(buffer.begin(), buffer.end(), 9);
  log.ApplyReverseInto(buffer.data(), buffer.size());
  EXPECT_EQ(buffer, std::vector<uint8_t>(100, 7));
}

TEST(UndoLog, PartialExtentUsesPooledSlotAtWindowOffset) {
  std::vector<uint8_t> buffer(128);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<uint8_t>(i);
  }
  ftx_store::UndoLog log(64);
  // 16 bytes inside window 1: pooled despite not being slot-sized.
  int32_t index = log.RecordBeforeImage(80, buffer.data() + 80, 16);
  EXPECT_EQ(log.allocated_slots(), 1u);
  EXPECT_GE(log.records()[index].slot, 0);
  std::fill(buffer.begin() + 80, buffer.begin() + 96, 0xff);
  log.ApplyReverseInto(buffer.data(), buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<uint8_t>(i)) << i;
  }
}

TEST(UndoLog, WidenToWindowCompletesPartialImageInPlace) {
  std::vector<uint8_t> buffer(128);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> committed = buffer;
  ftx_store::UndoLog log(64);
  int32_t index = log.RecordBeforeImage(80, buffer.data() + 80, 16);
  // Mutate inside the extent, then widen with the live window (bytes
  // outside the extent are still committed), then mutate outside it.
  std::fill(buffer.begin() + 80, buffer.begin() + 96, 0xaa);
  log.WidenToWindow(index, buffer.data() + 64);
  EXPECT_EQ(log.records()[index].offset, 64);
  EXPECT_EQ(log.records()[index].size, 64);
  EXPECT_EQ(log.byte_size(), 64);
  std::fill(buffer.begin() + 64, buffer.end(), 0xbb);
  log.ApplyReverseInto(buffer.data(), buffer.size());
  EXPECT_EQ(buffer, committed);
  // The widened record's slot went back to the pool.
  EXPECT_EQ(log.free_slots(), 1u);
}

TEST(UndoLog, OddFallbackBuffersAreRecycledAcrossEpochs) {
  std::vector<uint8_t> buffer(256, 3);
  ftx_store::UndoLog log(64);
  for (int epoch = 0; epoch < 4; ++epoch) {
    log.RecordBeforeImage(32, buffer.data() + 32, 64);   // straddles windows
    log.RecordBeforeImage(130, buffer.data() + 130, 70);  // straddles windows
    EXPECT_EQ(log.allocated_slots(), 0u);
    log.Discard();
  }
  EXPECT_EQ(log.byte_size(), 0);
}

// --- RedoLog ---

TEST(RedoLog, AppendsAssignSequences) {
  ftx_store::RedoLog log;
  ftx::Bytes image(4096, 1);
  ftx_store::RedoRecord a;
  a.AppendPage(0, image.data(), image.size());
  log.Append(std::move(a));
  ftx_store::RedoRecord b;
  b.metadata = ftx::Bytes(64, 2);
  log.Append(std::move(b));

  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].sequence, 0);
  EXPECT_EQ(log.records()[1].sequence, 1);
  EXPECT_EQ(log.Latest()->sequence, 1);
}

TEST(RedoLog, PayloadBytesCountPagesAndMetadata) {
  ftx_store::RedoRecord record;
  ftx::Bytes image(4096, 0);
  record.AppendPage(0, image.data(), image.size());
  record.AppendPage(4096, image.data(), image.size());
  record.metadata = ftx::Bytes(100, 0);
  EXPECT_EQ(record.PayloadBytes(), 2 * (4096 + 8) + 100);
}

TEST(RedoRecord, SerializationRoundTripsAndValidates) {
  ftx_store::RedoRecord record;
  ftx::Bytes first(64, 0xaa);
  ftx::Bytes second(64, 0xbb);
  record.AppendPage(0, first.data(), first.size());
  record.AppendPage(128, second.data(), second.size());
  EXPECT_EQ(record.page_count, 2);
  EXPECT_EQ(record.page_bytes, 128);
  EXPECT_TRUE(record.ValidatePages());

  std::vector<std::pair<int64_t, ftx::Bytes>> decoded;
  EXPECT_TRUE(record.ForEachPage([&](int64_t offset, const uint8_t* data, size_t size) {
    decoded.emplace_back(offset, ftx::Bytes(data, data + size));
  }));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].first, 0);
  EXPECT_EQ(decoded[0].second, first);
  EXPECT_EQ(decoded[1].first, 128);
  EXPECT_EQ(decoded[1].second, second);
}

TEST(RedoRecord, ValidationCatchesCorruptedPayload) {
  ftx_store::RedoRecord record;
  ftx::Bytes image(64, 0x5c);
  record.AppendPage(0, image.data(), image.size());
  ASSERT_TRUE(record.ValidatePages());
  record.pages_payload[20] ^= 0x01;  // bit rot in a page image
  EXPECT_FALSE(record.ValidatePages());
}

TEST(RedoLog, TruncateDropsPrefix) {
  ftx_store::RedoLog log;
  for (int i = 0; i < 5; ++i) {
    log.Append(ftx_store::RedoRecord{});
  }
  log.TruncateThrough(2);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].sequence, 3);
}

// --- CommitPipeline (group commit) ---

ftx_store::RedoRecord PageRecord(uint8_t fill, size_t bytes = 4096) {
  ftx_store::RedoRecord record;
  ftx::Bytes image(bytes, fill);
  record.AppendPage(0, image.data(), image.size());
  return record;
}

TEST(CommitPipeline, WindowFillsAtMaxRecordsAndFlushesUnderOneSlot) {
  ftx_store::RedoLog log;
  ftx_store::WriteJournal journal;
  log.AttachJournal(&journal);
  ftx_store::BatchPolicy policy;
  policy.enabled = true;
  policy.max_records = 3;
  ftx_store::CommitPipeline pipeline(&log, policy);

  EXPECT_FALSE(pipeline.Stage(PageRecord(1)));
  EXPECT_FALSE(pipeline.Stage(PageRecord(2)));
  EXPECT_TRUE(pipeline.Stage(PageRecord(3)));  // window full: flush now
  EXPECT_EQ(pipeline.staged_records(), 3);
  EXPECT_GT(pipeline.Flush(), 0);
  EXPECT_TRUE(pipeline.empty());

  // One window: three record bodies, ONE commit slot, two barriers — and
  // the slot (the only write below the record area) vouches for the last
  // staged sequence.
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records().back().sequence, 2);
  EXPECT_EQ(journal.barriers(), 2);
  int slot_writes = 0;
  for (const ftx_store::DiskOp& op : journal.ops()) {
    if (op.kind == ftx_store::DiskOpKind::kSectorWrite &&
        op.offset < ftx_store::kLogStartOffset) {
      ++slot_writes;
      EXPECT_EQ(op.sequence, 2);
    }
  }
  EXPECT_EQ(slot_writes, 1);
}

TEST(CommitPipeline, MaxBytesOverflowRecordJoinsItsWindow) {
  // The record that crosses max_bytes still joins the window (flush fires
  // right after staging it), so one oversized commit can never wedge the
  // pipeline — and the window holds BOTH records, not the pre-overflow
  // prefix.
  ftx_store::RedoLog log;
  ftx_store::BatchPolicy policy;
  policy.enabled = true;
  policy.max_records = 100;
  policy.max_bytes = 6000;
  ftx_store::CommitPipeline pipeline(&log, policy);

  EXPECT_FALSE(pipeline.Stage(PageRecord(1)));         // ~4KB staged
  EXPECT_TRUE(pipeline.Stage(PageRecord(2, 8192)));    // crosses mid-batch
  EXPECT_EQ(pipeline.staged_records(), 2);
  EXPECT_GT(pipeline.staged_bytes(), policy.max_bytes);
  EXPECT_GT(pipeline.Flush(), 0);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.next_sequence(), 2);

  // A single record larger than max_bytes flushes immediately as its own
  // window.
  EXPECT_TRUE(pipeline.Stage(PageRecord(3, 16384)));
  EXPECT_GT(pipeline.Flush(), 0);
  EXPECT_EQ(log.records().size(), 3u);
}

TEST(CommitPipeline, DropDiscardsStagedWindowWithoutPersisting) {
  // Crash/kill semantics: a dropped window never reaches the log, and the
  // next staged window resumes sequence numbering as if the dropped records
  // never happened (they were never reported committed).
  ftx_store::RedoLog log;
  ftx_store::BatchPolicy policy;
  policy.enabled = true;
  policy.max_records = 8;
  ftx_store::CommitPipeline pipeline(&log, policy);

  pipeline.Stage(PageRecord(1));
  pipeline.Stage(PageRecord(2));
  EXPECT_EQ(pipeline.staged_records(), 2);
  pipeline.Drop();
  EXPECT_TRUE(pipeline.empty());
  EXPECT_EQ(pipeline.staged_bytes(), 0);
  EXPECT_EQ(log.records().size(), 0u);
  EXPECT_EQ(pipeline.Flush(), 0);  // nothing staged: no-op

  pipeline.Stage(PageRecord(3));
  pipeline.Flush();
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].sequence, 0);
}

// --- StableStore policies ---

TEST(StableStore, RioIsOrdersOfMagnitudeFasterThanDisk) {
  ftx_store::RioStore rio;
  ftx_store::DiskModel disk_model;
  ftx_store::DiskStore disk(&disk_model);

  int64_t commit_bytes = 16 * 1024;
  EXPECT_LT(rio.PersistCost(commit_bytes).nanos() * 100, disk.PersistCost(commit_bytes).nanos());
  EXPECT_LT(rio.LogAppendCost(64).nanos() * 100, disk.LogAppendCost(64).nanos());
}

TEST(StableStore, DiskCommitCostsAboutFortyMilliseconds) {
  // The calibration behind Fig. 8's DC-disk overheads (DESIGN.md §5).
  ftx_store::DiskModel disk_model;
  ftx_store::DiskStore disk(&disk_model);
  ftx::Duration commit = disk.PersistCost(16 * 1024);
  EXPECT_GT(commit.millis(), 30);
  EXPECT_LT(commit.millis(), 55);
  ftx::Duration log_append = disk.LogAppendCost(64);
  EXPECT_GT(log_append.millis(), 8);
  EXPECT_LT(log_append.millis(), 15);
}

TEST(StableStore, BothSurviveOsCrash) {
  ftx_store::RioStore rio;
  ftx_store::DiskModel disk_model;
  ftx_store::DiskStore disk(&disk_model);
  EXPECT_TRUE(rio.SurvivesOsCrash());
  EXPECT_TRUE(disk.SurvivesOsCrash());
  EXPECT_EQ(rio.name(), "rio");
  EXPECT_EQ(disk.name(), "dc-disk");
}

}  // namespace
