// Tests for the bench suite's option table: the generated usage text covers
// every flag (with its value placeholder and doc line), ParseBenchOptions
// fills BenchOptions from a synthetic argv, and --log-level names map to
// ftx::LogLevel exactly as the parser the flag delegates to.

#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/suite.h"
#include "src/common/log.h"

namespace {

TEST(BenchUsage, GeneratedTextCoversEveryFlag) {
  std::string usage = ftx_bench::BenchUsageText("bench_binary");
  EXPECT_NE(usage.find("usage: bench_binary [flags]"), std::string::npos);
  // One line per kBenchFlags entry; a flag added without a doc line (or a
  // doc edited without its flag) fails here.
  for (const char* needle : {"--full", "--scale N", "--jobs N", "--seed S", "--json PATH",
                             "--trace PATH", "--audit", "--log-level LEVEL", "--repeat N",
                             "--prof PATH", "--backend NAME", "--shards N"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << "missing from usage: " << needle;
  }
  EXPECT_NE(usage.find("live causal audit"), std::string::npos);
  EXPECT_NE(usage.find("error|warning|info|debug"), std::string::npos);
  EXPECT_NE(usage.find("byte-identical"), std::string::npos);  // the --shards contract
}

TEST(BenchUsage, ParseFillsOptionsFromArgv) {
  const char* argv[] = {"bench",  "--full", "--scale",     "40",   "--jobs", "3",
                        "--seed", "99",     "--json",      "r.json", "--trace", "t.json",
                        "--audit", "--log-level", "debug", "--repeat", "5",
                        "--prof", "p.collapsed", "--backend", "threads", "--shards", "16"};
  ftx_bench::BenchOptions options =
      ftx_bench::ParseBenchOptions(static_cast<int>(std::size(argv)),
                                   const_cast<char**>(argv));
  EXPECT_TRUE(options.full_scale);
  EXPECT_EQ(options.scale_override, 40);
  EXPECT_EQ(options.jobs, 3);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.json_path, "r.json");
  EXPECT_EQ(options.trace_path, "t.json");
  EXPECT_TRUE(options.audit);
  EXPECT_EQ(options.log_level, "debug");
  EXPECT_EQ(options.repeat, 5);
  EXPECT_EQ(options.prof_path, "p.collapsed");
  EXPECT_EQ(options.backend, "threads");
  EXPECT_EQ(options.shards, 16);
  EXPECT_EQ(ftx::GetLogLevel(), ftx::LogLevel::kDebug);
  ftx::SetLogLevel(ftx::LogLevel::kWarning);  // restore the default
}

TEST(BenchUsage, DefaultsLeaveEverythingOff) {
  const char* argv[] = {"bench"};
  ftx_bench::BenchOptions options =
      ftx_bench::ParseBenchOptions(1, const_cast<char**>(argv));
  EXPECT_FALSE(options.full_scale);
  EXPECT_EQ(options.scale_override, 0);
  EXPECT_EQ(options.jobs, 0);
  EXPECT_EQ(options.seed, 0u);
  EXPECT_TRUE(options.json_path.empty());
  EXPECT_TRUE(options.trace_path.empty());
  EXPECT_FALSE(options.audit);
  EXPECT_TRUE(options.log_level.empty());
  EXPECT_EQ(options.repeat, 1);
  EXPECT_TRUE(options.prof_path.empty());
  EXPECT_TRUE(options.backend.empty());
  EXPECT_EQ(options.shards, 0);  // 0 = the bench's own choice
}

TEST(LogLevelParse, AcceptsNamesAliasesAndDigits) {
  ftx::LogLevel level = ftx::LogLevel::kError;
  EXPECT_TRUE(ftx::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, ftx::LogLevel::kDebug);
  EXPECT_TRUE(ftx::ParseLogLevel("WARNING", &level));
  EXPECT_EQ(level, ftx::LogLevel::kWarning);
  EXPECT_TRUE(ftx::ParseLogLevel("warn", &level));
  EXPECT_EQ(level, ftx::LogLevel::kWarning);
  EXPECT_TRUE(ftx::ParseLogLevel("info", &level));
  EXPECT_EQ(level, ftx::LogLevel::kInfo);
  EXPECT_TRUE(ftx::ParseLogLevel("0", &level));
  EXPECT_EQ(level, ftx::LogLevel::kError);
  EXPECT_TRUE(ftx::ParseLogLevel("3", &level));
  EXPECT_EQ(level, ftx::LogLevel::kDebug);
  EXPECT_FALSE(ftx::ParseLogLevel("loud", &level));
  EXPECT_FALSE(ftx::ParseLogLevel("", &level));
  EXPECT_EQ(level, ftx::LogLevel::kDebug);  // junk leaves *out alone
}

}  // namespace
