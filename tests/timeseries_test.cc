// Tests for the sim-time telemetry engine (src/obs/tsdb/) and the causal
// critical-path tracker (src/obs/causal/critical_path.h): cadence boundary
// semantics and the closing sample, ring eviction, collation-independent
// column order, taint propagation with per-phase attribution, and the two
// end-to-end contracts — the exported JSONL is byte-identical for any
// shard layout, and enabling telemetry never moves a simulated quantity.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/fleet.h"
#include "src/core/computation.h"
#include "src/core/experiment.h"
#include "src/obs/causal/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/tsdb/tsdb.h"

namespace {

using ftx_causal::CriticalPathTracker;
using ftx_causal::RecoveryPhases;
using ftx_obs::TimeSeriesDb;
using ftx_obs::TimeSeriesOptions;
using ftx_sm::EventKind;
using ftx_sm::EventRef;
using ftx_sm::TraceEvent;

// --- tsdb: sampling semantics ---

TEST(TimeSeriesDb, SamplesEveryCrossedBoundaryWithPriorState) {
  TimeSeriesOptions options;
  options.cadence_ns = 100;
  TimeSeriesDb db(options);
  int64_t value = 0;
  db.AddCounter("v", [&value]() { return value; });

  // Event at t=0: boundary 0 not yet crossed (a boundary is sampled only
  // once some event lies strictly after it).
  db.OnSimTime(0);
  EXPECT_EQ(db.samples_taken(), 0);
  value = 1;
  // Event at t=250 crosses boundaries 0, 100, 200; the current state (the
  // state after every event < 250) is what each of them sees.
  db.OnSimTime(250);
  EXPECT_EQ(db.samples_taken(), 3);
  value = 2;
  db.OnSimTime(250);  // same time again: no new boundary
  EXPECT_EQ(db.samples_taken(), 3);
  db.Finalize(320);  // boundary 300, then the closing sample at 320
  EXPECT_EQ(db.samples_taken(), 5);

  std::vector<int64_t> times;
  std::vector<int64_t> values;
  db.ForEachSample([&](const TimeSeriesDb::Sample& s) {
    times.push_back(s.t_ns);
    values.push_back(s.counters[0]);
  });
  EXPECT_EQ(times, (std::vector<int64_t>{0, 100, 200, 300, 320}));
  EXPECT_EQ(values, (std::vector<int64_t>{1, 1, 1, 2, 2}));
}

TEST(TimeSeriesDb, FinalizeOnBoundaryEmitsNoDuplicateAndIsIdempotent) {
  TimeSeriesOptions options;
  options.cadence_ns = 100;
  TimeSeriesDb db(options);
  db.AddGauge("g", []() { return 1.5; });
  db.OnSimTime(150);  // boundaries 0, 100
  db.Finalize(200);   // boundary 200 is itself the closing time: no duplicate
  EXPECT_EQ(db.samples_taken(), 3);
  db.Finalize(200);
  EXPECT_EQ(db.samples_taken(), 3);
  std::vector<int64_t> times;
  db.ForEachSample([&](const TimeSeriesDb::Sample& s) { times.push_back(s.t_ns); });
  EXPECT_EQ(times, (std::vector<int64_t>{0, 100, 200}));
}

TEST(TimeSeriesDb, RingEvictsOldestButCountsAll) {
  TimeSeriesOptions options;
  options.cadence_ns = 10;
  options.capacity = 4;
  TimeSeriesDb db(options);
  int64_t t = 0;
  db.AddCounter("t", [&t]() { return t; });
  t = 95;
  db.OnSimTime(95);  // boundaries 0..90: 10 samples
  EXPECT_EQ(db.samples_taken(), 10);
  EXPECT_EQ(db.samples_retained(), 4);
  EXPECT_EQ(db.samples_dropped(), 6);
  std::vector<int64_t> times;
  db.ForEachSample([&](const TimeSeriesDb::Sample& s) { times.push_back(s.t_ns); });
  EXPECT_EQ(times, (std::vector<int64_t>{60, 70, 80, 90}));  // oldest evicted
  // The header records both counts.
  const std::string jsonl = db.ToJsonl();
  EXPECT_NE(jsonl.find("\"samples\":4"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"dropped\":6"), std::string::npos) << jsonl;
}

TEST(TimeSeriesDb, ColumnsOrderedBytewiseRegardlessOfRegistration) {
  TimeSeriesDb db;
  // Registration order is scrambled and mixes kinds; the export must order
  // by ordinal byte value (so "Z" < "a", and '.' < '0' < 'z').
  db.AddGauge("net.rate", []() { return 0.0; });
  db.AddCounter("Zeta", []() { return 0; });
  db.AddCounter("dc.commits", []() { return 0; });
  db.AddGauge("dc.down", []() { return 0.0; });
  db.OnSimTime(1);
  db.Finalize(1);
  const std::string jsonl = db.ToJsonl();
  const size_t zeta = jsonl.find("\"Zeta\"");
  const size_t commits = jsonl.find("\"dc.commits\"");
  const size_t down = jsonl.find("\"dc.down\"");
  const size_t rate = jsonl.find("\"net.rate\"");
  ASSERT_NE(zeta, std::string::npos);
  ASSERT_NE(rate, std::string::npos);
  EXPECT_LT(zeta, commits);
  EXPECT_LT(commits, down);
  EXPECT_LT(down, rate);
  // Same order MetricNameLess itself reports — the registry snapshot and
  // the tsdb header can never disagree on collation.
  ftx_obs::MetricNameLess less;
  EXPECT_TRUE(less("Zeta", "dc.commits"));
  EXPECT_TRUE(less("dc.commits", "dc.down"));
  EXPECT_TRUE(less("dc.down", "net.rate"));
}

TEST(TimeSeriesDbDeathTest, DuplicateNameAborts) {
  TimeSeriesDb db;
  db.AddCounter("x", []() { return 0; });
  EXPECT_DEATH(db.AddGauge("x", []() { return 0.0; }), "duplicate");
}

TEST(TimeSeriesDbDeathTest, RegistrationAfterSealAborts) {
  TimeSeriesDb db;
  db.AddCounter("x", []() { return 0; });
  db.OnSimTime(1);  // seals
  EXPECT_DEATH(db.AddCounter("y", []() { return 0; }), "after first sample");
}

// --- critical path: synthetic taint chains ---

TEST(CriticalPath, NoCrashMeansNoPath) {
  CriticalPathTracker tracker(2);
  int64_t now = 0;
  tracker.SetTimeSource([&now]() { return now; });
  now = 50;
  tracker.OnTraceEvent(EventRef{0, 0}, TraceEvent{.process = 0, .kind = EventKind::kCommit});
  auto path = tracker.Extract();
  EXPECT_FALSE(path.found);
  EXPECT_EQ(tracker.crashes(), 0);
}

TEST(CriticalPath, TaintPropagatesThroughMessageToLastDependentCommit) {
  CriticalPathTracker tracker(3);
  int64_t now = 0;
  tracker.SetTimeSource([&now]() { return now; });

  // p2 commits before the crash: untainted, must not end the path.
  now = 40;
  tracker.OnTraceEvent(EventRef{2, 0}, TraceEvent{.process = 2, .kind = EventKind::kCommit});

  now = 100;
  tracker.OnCrash(0);  // stop failure: no kCrash trace event
  tracker.OnRecovery(0, /*start_ns=*/150, /*end_ns=*/250,
                     RecoveryPhases{.log_scan_ns = 60, .page_install_ns = 40});
  now = 300;
  tracker.OnTraceEvent(EventRef{0, 0}, TraceEvent{.process = 0, .kind = EventKind::kSend,
                                                  .message_id = 7});
  // An untainted process's send must not taint anything.
  now = 310;
  tracker.OnTraceEvent(EventRef{2, 1}, TraceEvent{.process = 2, .kind = EventKind::kSend,
                                                  .message_id = 8});
  now = 400;
  tracker.OnTraceEvent(EventRef{1, 0}, TraceEvent{.process = 1, .kind = EventKind::kReceive,
                                                  .message_id = 7});
  now = 600;
  tracker.OnTraceEvent(EventRef{1, 1}, TraceEvent{.process = 1, .kind = EventKind::kCommit});

  EXPECT_EQ(tracker.crashes(), 1);
  EXPECT_EQ(tracker.tainted_processes(), 2);  // p0 and p1
  EXPECT_EQ(tracker.tainted_messages(), 1);   // message 7 only

  auto path = tracker.Extract();
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.root_pid, 0);
  EXPECT_EQ(path.root_crash_ns, 100);
  EXPECT_EQ(path.last_pid, 1);
  EXPECT_EQ(path.last_commit_ns, 600);
  EXPECT_EQ(path.span_ns, 500);

  // Hops tile [100, 600] exactly: detection 100-150, log_scan 150-210,
  // page_install 210-250, re_execution 250-300, message 300-400,
  // re_execution 400-600.
  ASSERT_EQ(path.hops.size(), 6u);
  int64_t cursor = path.root_crash_ns;
  for (const auto& hop : path.hops) {
    EXPECT_EQ(hop.start_ns, cursor) << hop.phase;
    cursor += hop.dur_ns;
  }
  EXPECT_EQ(cursor, path.last_commit_ns);
  EXPECT_EQ(path.hops[0].phase, "detection");
  EXPECT_EQ(path.hops[0].dur_ns, 50);
  EXPECT_EQ(path.hops[1].phase, "log_scan");
  EXPECT_EQ(path.hops[1].dur_ns, 60);
  EXPECT_EQ(path.hops[2].phase, "page_install");
  EXPECT_EQ(path.hops[2].dur_ns, 40);
  EXPECT_EQ(path.hops[4].phase, "message");
  EXPECT_EQ(path.hops[4].dur_ns, 100);

  // Binding: the longest single span is p1's 200 ns re-execution.
  EXPECT_EQ(path.binding_pid, 1);
  EXPECT_EQ(path.binding_phase, "re_execution");
  EXPECT_EQ(path.binding_ns, 200);
  EXPECT_EQ(path.totals_ns["message"], 100);
  EXPECT_EQ(path.totals_ns["re_execution"], 250);

  // The embedded report carries the same verdict.
  const std::string report = tracker.ToJson().Dump();
  EXPECT_NE(report.find("\"found\":true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"re_execution\""), std::string::npos) << report;
}

TEST(CriticalPath, PropagationCrashEventCountsExactlyOnce) {
  CriticalPathTracker tracker(2);
  int64_t now = 0;
  tracker.SetTimeSource([&now]() { return now; });
  now = 10;
  tracker.OnTraceEvent(EventRef{0, 0}, TraceEvent{.process = 0, .kind = EventKind::kCrash});
  now = 90;
  tracker.OnTraceEvent(EventRef{0, 1}, TraceEvent{.process = 0, .kind = EventKind::kCommit});
  EXPECT_EQ(tracker.crashes(), 1);
  auto path = tracker.Extract();
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.root_pid, 0);
  EXPECT_EQ(path.root_crash_ns, 10);
  // No completed recovery was reported: the whole gap is detection.
  ASSERT_EQ(path.hops.size(), 1u);
  EXPECT_EQ(path.hops[0].phase, "detection");
  EXPECT_EQ(path.hops[0].dur_ns, 80);
}

TEST(CriticalPath, FirstTaintWins) {
  CriticalPathTracker tracker(2);
  int64_t now = 0;
  tracker.SetTimeSource([&now]() { return now; });
  now = 100;
  tracker.OnCrash(1);
  now = 200;
  tracker.OnCrash(1);  // second crash of an already-tainted process
  now = 300;
  tracker.OnTraceEvent(EventRef{1, 0}, TraceEvent{.process = 1, .kind = EventKind::kCommit});
  EXPECT_EQ(tracker.crashes(), 2);
  auto path = tracker.Extract();
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.root_crash_ns, 100);  // rooted at the first taint
  EXPECT_EQ(path.span_ns, 200);
}

// --- end-to-end: shard-layout byte-identity and neutrality ---

ftx_apps::FleetConfig SmallFleet() {
  ftx_apps::FleetConfig config;
  config.num_servers = 2;
  config.num_clients = 6;
  config.requests_per_client = 3;
  return config;
}

ftx::ComputationOptions FleetOptions(int shards) {
  ftx::ComputationOptions options;
  options.seed = 4242;
  options.protocol = "cpv-2pc";
  options.store = ftx::StoreKind::kRio;
  options.shards = shards;
  options.lean_trace = true;
  options.recovery_delay = ftx::Microseconds(200);
  return options;
}

struct FleetRun {
  std::string jsonl;
  std::string critical_path;
  int64_t commits = 0;
  int64_t rollbacks = 0;
  int64_t end_ns = 0;
};

FleetRun RunCrashedFleet(int shards, bool telemetry) {
  ftx::ComputationOptions options = FleetOptions(shards);
  options.timeseries = telemetry;
  options.timeseries_options.cadence_ns = 100000;  // 100 us
  options.critical_path = telemetry;
  ftx::Computation computation(options, ftx_apps::MakeFleetApps(SmallFleet()));
  computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(1),
                                  ftx::Microseconds(200));
  ftx::ComputationResult result = computation.Run();
  FleetRun run;
  run.commits = result.total_commits;
  run.rollbacks = result.total_rollbacks;
  run.end_ns = (result.end_time - ftx::TimePoint()).nanos();
  if (telemetry) {
    run.jsonl = computation.timeseries()->ToJsonl();
    run.critical_path = computation.critical_path()->ToJson().Dump();
  }
  return run;
}

TEST(TimeSeriesEndToEnd, ExportByteIdenticalAcrossShardLayouts) {
  FleetRun s1 = RunCrashedFleet(/*shards=*/1, /*telemetry=*/true);
  FleetRun s4 = RunCrashedFleet(/*shards=*/4, /*telemetry=*/true);
  EXPECT_GT(s1.jsonl.size(), 0u);
  EXPECT_EQ(s1.jsonl, s4.jsonl);
  EXPECT_EQ(s1.critical_path, s4.critical_path);
  // The run really exercised the machinery being compared.
  EXPECT_GT(s1.rollbacks, 0);
  EXPECT_NE(s1.critical_path.find("\"found\":true"), std::string::npos) << s1.critical_path;
}

TEST(TimeSeriesEndToEnd, TelemetryNeverMovesSimulatedQuantities) {
  FleetRun on = RunCrashedFleet(/*shards=*/2, /*telemetry=*/true);
  FleetRun off = RunCrashedFleet(/*shards=*/2, /*telemetry=*/false);
  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.rollbacks, off.rollbacks);
  EXPECT_EQ(on.end_ns, off.end_ns);
}

TEST(TimeSeriesEndToEnd, ShardLanesAreOptInAndLayoutDependent) {
  ftx::ComputationOptions options = FleetOptions(2);
  options.timeseries = true;
  options.timeseries_options.shard_lanes = true;
  ftx::Computation computation(options, ftx_apps::MakeFleetApps(SmallFleet()));
  computation.Run();
  const std::string jsonl = computation.timeseries()->ToJsonl();
  EXPECT_NE(jsonl.find("shard0.events_executed"), std::string::npos);
  EXPECT_NE(jsonl.find("sim.cross_shard_events"), std::string::npos);
  // And the default export carries neither (the byte-identity contract).
  FleetRun plain = RunCrashedFleet(/*shards=*/2, /*telemetry=*/true);
  EXPECT_EQ(plain.jsonl.find("shard0."), std::string::npos);
  EXPECT_EQ(plain.jsonl.find("cross_shard"), std::string::npos);
}

// MeasureOverhead hands the telemetry file to the recoverable run only, so
// the baseline half can never race it (satellite pin for the bench wiring).
TEST(TimeSeriesEndToEnd, MeasureOverheadSamplesRecoverableRunOnly) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 2;
  spec.seed = 7;
  spec.timeseries_path = "";  // no file: nothing written from this test
  ftx::OverheadRow row = ftx::MeasureOverhead(spec, nullptr);
  EXPECT_GT(row.checkpoints, 0);
}

}  // namespace
