// Tests for the crash-state exploration stack: the sector-granular write
// journal, the on-disk log image codec, the survivor decoder, RedoLog
// framing under truncation/corruption, Runtime::Recover's refusal of
// frankenstates, and a small end-to-end run of the torture engine itself.

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/storage/log_image.h"
#include "src/storage/redo_log.h"
#include "src/storage/write_journal.h"
#include "src/torture/torture.h"

namespace {

using ftx_store::CommitSlot;
using ftx_store::DecodeStatus;
using ftx_store::DiskOp;
using ftx_store::DiskOpKind;
using ftx_store::kLogStartOffset;
using ftx_store::kSectorBytes;
using ftx_store::RedoLog;
using ftx_store::RedoRecord;
using ftx_store::WriteJournal;

RedoRecord MakeRecord(ftx::Rng* rng, int pages, size_t page_size) {
  RedoRecord record;
  ftx::Bytes image(page_size);
  for (int p = 0; p < pages; ++p) {
    for (uint8_t& b : image) {
      b = static_cast<uint8_t>(rng->NextBounded(256));
    }
    record.AppendPage(static_cast<int64_t>(p) * static_cast<int64_t>(page_size), image.data(),
                      image.size());
  }
  ftx::AppendValue(&record.metadata, rng->NextU64());
  return record;
}

// --- WriteJournal ---

TEST(WriteJournal, SplitsWritesIntoPaddedSectors) {
  WriteJournal journal;
  ftx::Bytes data(kSectorBytes + 100, 0xab);
  journal.Write(kLogStartOffset, data.data(), data.size(), 7);
  journal.Barrier(7);

  ASSERT_EQ(journal.ops().size(), 3u);
  EXPECT_EQ(journal.ops()[0].kind, DiskOpKind::kSectorWrite);
  EXPECT_EQ(journal.ops()[0].offset, kLogStartOffset);
  EXPECT_EQ(journal.ops()[1].offset, kLogStartOffset + kSectorBytes);
  // The final partial sector is zero-padded.
  EXPECT_EQ(journal.ops()[1].data[99], 0xab);
  EXPECT_EQ(journal.ops()[1].data[100], 0);
  EXPECT_EQ(journal.ops()[2].kind, DiskOpKind::kBarrier);
  EXPECT_EQ(journal.barriers(), 1);
  for (const DiskOp& op : journal.ops()) {
    EXPECT_EQ(op.sequence, 7);
  }
}

TEST(WriteJournal, MaterializeAppliesPrefixInOrder) {
  WriteJournal journal;
  ftx::Bytes first(kSectorBytes, 0x11);
  ftx::Bytes second(kSectorBytes, 0x22);
  journal.Write(0, first.data(), first.size(), 0);
  journal.Write(0, second.data(), second.size(), 1);

  ftx::Bytes after_first = journal.MaterializeImage(1, kSectorBytes);
  EXPECT_EQ(after_first[0], 0x11);
  ftx::Bytes after_both = journal.MaterializeImage(2, kSectorBytes);
  EXPECT_EQ(after_both[0], 0x22);
}

// --- CommitSlot codec ---

TEST(CommitSlot, RoundTripsThroughOneSector) {
  CommitSlot slot;
  slot.sequence = 42;
  slot.log_start = kLogStartOffset + 3 * kSectorBytes;
  slot.log_end = kLogStartOffset + 9 * kSectorBytes;
  slot.start_sequence = 40;

  ftx::Bytes sector = ftx_store::EncodeCommitSlot(slot);
  ASSERT_EQ(sector.size(), static_cast<size_t>(kSectorBytes));

  CommitSlot decoded;
  ASSERT_TRUE(ftx_store::DecodeCommitSlot(sector.data(), sector.size(), &decoded));
  EXPECT_EQ(decoded.sequence, 42);
  EXPECT_EQ(decoded.log_start, slot.log_start);
  EXPECT_EQ(decoded.log_end, slot.log_end);
  EXPECT_EQ(decoded.start_sequence, 40);
}

TEST(CommitSlot, RejectsZeroedTornAndBitFlippedSectors) {
  ftx::Bytes zeros(kSectorBytes, 0);
  CommitSlot decoded;
  EXPECT_FALSE(ftx_store::DecodeCommitSlot(zeros.data(), zeros.size(), &decoded));

  // High bytes of every field are nonzero so each torn cut genuinely
  // differs from the full sector (a cut across trailing zero bytes would
  // be byte-identical to the complete write and rightly accepted).
  CommitSlot slot;
  slot.sequence = INT64_MAX - 3;
  slot.log_start = INT64_MAX - 5;
  slot.log_end = INT64_MAX - 7;
  slot.start_sequence = INT64_MAX - 11;
  ftx::Bytes sector = ftx_store::EncodeCommitSlot(slot);
  for (size_t cut : {4u, 8u, 20u, 39u}) {
    ftx::Bytes torn(kSectorBytes, 0);
    std::memcpy(torn.data(), sector.data(), cut);
    EXPECT_FALSE(ftx_store::DecodeCommitSlot(torn.data(), torn.size(), &decoded))
        << "torn at " << cut;
  }
  sector[17] ^= 0x40;
  EXPECT_FALSE(ftx_store::DecodeCommitSlot(sector.data(), sector.size(), &decoded));
}

// --- Record codec ---

TEST(LogImage, RecordRoundTripsAndIsSectorPadded) {
  ftx::Rng rng(5);
  RedoRecord record = MakeRecord(&rng, 3, 4096);
  record.sequence = 9;

  ftx::Bytes encoded = ftx_store::EncodeRecord(record);
  EXPECT_EQ(encoded.size() % kSectorBytes, 0u);

  RedoRecord decoded;
  int64_t next = 0;
  ASSERT_EQ(ftx_store::DecodeRecord(encoded, 0, &decoded, &next), DecodeStatus::kOk);
  EXPECT_EQ(next, static_cast<int64_t>(encoded.size()));
  EXPECT_EQ(decoded.sequence, 9);
  EXPECT_EQ(decoded.page_count, 3);
  EXPECT_EQ(decoded.pages_payload, record.pages_payload);
  EXPECT_EQ(decoded.metadata, record.metadata);
  EXPECT_TRUE(decoded.ValidatePages());
}

// Satellite regression: a tail truncated *inside the header* — before the
// length fields are even complete — must be classified by arithmetic, never
// read past the buffer. (The old additive bounds check in ForEachPage could
// wrap on a huge claimed size; DecodeRecord validates lengths against the
// remaining bytes before computing any CRC.)
TEST(LogImage, MidHeaderTruncationIsRejectedCleanly) {
  ftx::Rng rng(6);
  RedoRecord record = MakeRecord(&rng, 2, 4096);
  ftx::Bytes encoded = ftx_store::EncodeRecord(record);

  RedoRecord decoded;
  for (size_t keep : {0u, 3u, 7u, 11u, 19u, 30u, 47u, 55u}) {
    ftx::Bytes truncated(encoded.begin(), encoded.begin() + keep);
    EXPECT_EQ(ftx_store::DecodeRecord(truncated, 0, &decoded, nullptr), DecodeStatus::kTruncated)
        << "kept " << keep << " bytes";
  }
}

TEST(LogImage, PayloadTruncationRejectedBeforeCrcSeesIt) {
  ftx::Rng rng(7);
  RedoRecord record = MakeRecord(&rng, 4, 4096);
  ftx::Bytes encoded = ftx_store::EncodeRecord(record);

  RedoRecord decoded;
  // Keep the whole header but cut the payload: the header's length fields
  // now claim more bytes than remain.
  ftx::Bytes truncated(encoded.begin(), encoded.begin() + 64 + 1000);
  EXPECT_EQ(ftx_store::DecodeRecord(truncated, 0, &decoded, nullptr), DecodeStatus::kTruncated);
}

TEST(RedoRecord, ForEachPageRejectsHugeClaimedSizeWithoutOverflow) {
  RedoRecord record;
  ftx::Bytes image(64, 0x5c);
  record.AppendPage(0, image.data(), image.size());
  // Forge the size field of the only run to a huge value that would wrap an
  // additive cursor+size bounds check back into range.
  int64_t huge = INT64_MAX - 8;
  std::memcpy(record.pages_payload.data() + 8, &huge, sizeof(huge));
  int visited = 0;
  EXPECT_FALSE(record.ForEachPage([&](int64_t, const uint8_t*, size_t) { ++visited; }));
  EXPECT_EQ(visited, 0);
}

// --- Model-based property test: append / persist / recover round-trips
// under random record shapes and random tail truncation or corruption
// (mirrors the SegmentProperty style in vista_test.cc). ---

class RedoLogProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedoLogProperty, SurvivorDecodeYieldsExactCommittedPrefix) {
  ftx::Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 11);

  RedoLog log;
  WriteJournal journal;
  log.AttachJournal(&journal);

  // Append a random chain; keep canonical copies of what was committed.
  const int num_records = 2 + static_cast<int>(rng.NextBounded(6));
  std::vector<RedoRecord> canonical;
  for (int i = 0; i < num_records; ++i) {
    const int pages = 1 + static_cast<int>(rng.NextBounded(4));
    const size_t page_size = 256 << rng.NextBounded(5);  // 256..4096
    RedoRecord record = MakeRecord(&rng, pages, page_size);
    log.Append(record);  // assigns sequence i
    record.sequence = i;
    canonical.push_back(std::move(record));
  }

  const std::vector<DiskOp>& ops = journal.ops();
  int64_t image_bytes = kLogStartOffset;
  for (const DiskOp& op : ops) {
    if (op.kind == DiskOpKind::kSectorWrite) {
      image_bytes = std::max(image_bytes, op.offset + kSectorBytes);
    }
  }

  // Crash after a random prefix of the op trace; optionally corrupt one
  // byte in the unsynced epoch (bytes written since the last barrier).
  for (int trial = 0; trial < 40; ++trial) {
    const size_t prefix = static_cast<size_t>(rng.NextBounded(ops.size() + 1));
    ftx::Bytes image = journal.MaterializeImage(prefix, image_bytes);

    int64_t committed = -1;
    int64_t barriers = 0;
    int64_t synced_extent = kLogStartOffset;  // bytes barriered in the record area
    for (size_t i = 0; i < prefix; ++i) {
      if (ops[i].kind == DiskOpKind::kBarrier) {
        ++barriers;
        continue;
      }
      if (barriers % 2 == 0 && ops[i].offset >= kLogStartOffset) {
        // Record-area write in a record epoch; synced once the epoch's
        // barrier lands. Tracked pessimistically below.
      }
    }
    committed = barriers / 2 - 1;
    (void)synced_extent;

    if (rng.NextBernoulli(0.5) && prefix > 0) {
      // Corrupt a byte of the in-flight (unsynced) sector: find the last
      // barrier; any write after it is fair game for the crash to mangle.
      size_t epoch_begin = 0;
      for (size_t i = prefix; i-- > 0;) {
        if (ops[i].kind == DiskOpKind::kBarrier) {
          epoch_begin = i + 1;
          break;
        }
      }
      std::vector<const DiskOp*> unsynced;
      for (size_t i = epoch_begin; i < prefix; ++i) {
        if (ops[i].kind == DiskOpKind::kSectorWrite) {
          unsynced.push_back(&ops[i]);
        }
      }
      if (!unsynced.empty()) {
        const DiskOp* victim = unsynced[rng.NextBounded(unsynced.size())];
        image[static_cast<size_t>(victim->offset) + rng.NextBounded(kSectorBytes)] ^=
            static_cast<uint8_t>(1 + rng.NextBounded(255));
      }
    }

    ftx_store::SurvivorLog survivor = ftx_store::DecodeSurvivorImage(image);
    ASSERT_TRUE(survivor.decode_ok) << survivor.diagnostic;
    ASSERT_GE(survivor.last_sequence, committed);
    ASSERT_LE(survivor.last_sequence, committed + 1);
    ASSERT_EQ(static_cast<int64_t>(survivor.records.size()), survivor.last_sequence + 1);
    for (size_t i = 0; i < survivor.records.size(); ++i) {
      EXPECT_EQ(survivor.records[i].sequence, canonical[i].sequence);
      EXPECT_EQ(survivor.records[i].pages_payload, canonical[i].pages_payload);
      EXPECT_EQ(survivor.records[i].metadata, canonical[i].metadata);
      EXPECT_TRUE(survivor.records[i].ValidatePages());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedoLogProperty, ::testing::Range<uint64_t>(1, 13));

// Truncating the journaled log rewrites the slot so the survivor decodes
// only the retained suffix.
TEST(RedoLogJournal, TruncateThroughNarrowsTheSurvivor) {
  ftx::Rng rng(21);
  RedoLog log;
  WriteJournal journal;
  log.AttachJournal(&journal);
  for (int i = 0; i < 5; ++i) {
    log.Append(MakeRecord(&rng, 2, 1024));
  }
  log.TruncateThrough(2);

  const std::vector<DiskOp>& ops = journal.ops();
  int64_t image_bytes = kLogStartOffset;
  for (const DiskOp& op : ops) {
    if (op.kind == DiskOpKind::kSectorWrite) {
      image_bytes = std::max(image_bytes, op.offset + kSectorBytes);
    }
  }
  ftx::Bytes image = journal.MaterializeImage(ops.size(), image_bytes);
  ftx_store::SurvivorLog survivor = ftx_store::DecodeSurvivorImage(image);
  ASSERT_TRUE(survivor.decode_ok) << survivor.diagnostic;
  EXPECT_EQ(survivor.last_sequence, 4);
  EXPECT_EQ(survivor.start_sequence, 3);
  ASSERT_EQ(survivor.records.size(), 2u);
  EXPECT_EQ(survivor.records[0].sequence, 3);
  EXPECT_EQ(survivor.records[1].sequence, 4);
}

TEST(RedoLog, RestoreForRecoveryReplacesChainAndResumesSequences) {
  ftx::Rng rng(22);
  RedoLog log;
  for (int i = 0; i < 6; ++i) {
    log.Append(MakeRecord(&rng, 1, 512));
  }
  std::vector<RedoRecord> survivors(log.records().begin(), log.records().begin() + 3);
  log.RestoreForRecovery(std::move(survivors));
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records().back().sequence, 2);
  EXPECT_EQ(log.next_sequence(), 3);
  log.Append(MakeRecord(&rng, 1, 512));
  EXPECT_EQ(log.records().back().sequence, 3);
}

// --- Death tests: Runtime::Recover must refuse a frankenstate — a redo
// stream whose commit sector exists (the record is in the chain recovery
// reads) but whose page payload fails ValidatePages, or whose framing
// over-claims pages. These pin the exact aborts the torture engine relies
// on at scale. ---

void RunRecoveryWithTamper(const std::function<void(RedoRecord*)>& tamper) {
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = 20;
  spec.seed = 3;
  spec.store = ftx::StoreKind::kDisk;
  spec.mode = ftx_dc::RuntimeMode::kRecoverable;
  std::unique_ptr<ftx::Computation> computation = ftx::BuildComputation(spec);

  const ftx::TimePoint kill_at = ftx::TimePoint() + ftx::Seconds(1.0);
  computation->ScheduleStopFailure(0, kill_at, ftx::Milliseconds(50));
  computation->sim().ScheduleAt(kill_at + ftx::Milliseconds(25), [&computation, &tamper]() {
    std::vector<RedoRecord> records = computation->redo_log(0)->records();
    ASSERT_GE(records.size(), 2u);
    tamper(&records.back());
    computation->redo_log(0)->RestoreForRecovery(std::move(records));
  });
  computation->Run();
}

TEST(RecoverDeathTest, RefusesCommittedRecordWithCorruptPagePayload) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RunRecoveryWithTamper([](RedoRecord* record) {
                 ASSERT_FALSE(record->pages_payload.empty());
                 record->pages_payload[record->pages_payload.size() / 2] ^= 0x10;
               }),
               "redo record failed CRC validation");
}

TEST(RecoverDeathTest, RefusesCommittedRecordWithOverclaimedPageCount) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // page_count claims one more run than the payload holds; the CRC still
  // matches (payload untouched), so the malformed-framing check must fire.
  EXPECT_DEATH(RunRecoveryWithTamper([](RedoRecord* record) { ++record->page_count; }),
               "redo record page payload malformed");
}

// --- End-to-end: a small torture run must explore prefix, torn, and
// reorder states, replay survivors, and find zero violations. ---

TEST(TortureEngine, SmallNviExplorationHoldsInvariant) {
  ftx_torture::TortureSpec spec;
  spec.workload = "nvi";
  spec.scale = 20;
  spec.seed = 17;
  spec.max_commit_windows = 6;
  ftx_torture::TortureReport report = ftx_torture::ExploreCommitPath(spec, nullptr);

  EXPECT_EQ(report.violations, 0) << (report.violation_diagnostics.empty()
                                          ? ""
                                          : report.violation_diagnostics.front());
  EXPECT_GE(report.commits, 2);
  EXPECT_GT(report.prefix_states, 0);
  EXPECT_GT(report.torn_states, 0);
  EXPECT_GT(report.reorder_states, 0);
  EXPECT_GT(report.survivor_committed, 0);
  EXPECT_GT(report.survivor_none, 0);
  EXPECT_GT(report.replays, 0);
  EXPECT_EQ(report.replays, report.replays_consistent);
  EXPECT_GT(report.tail_records_seen, 0);
}

TEST(TortureEngine, ReportIsIdenticalAcrossPoolSizes) {
  ftx_torture::TortureSpec spec;
  spec.workload = "nvi";
  spec.scale = 20;
  spec.seed = 17;
  spec.max_commit_windows = 4;

  ftx::TrialPool pool4(4);
  ftx_torture::TortureReport serial = ftx_torture::ExploreCommitPath(spec, nullptr);
  ftx_torture::TortureReport parallel = ftx_torture::ExploreCommitPath(spec, &pool4);
  EXPECT_EQ(serial.ToJsonRow().Dump(2), parallel.ToJsonRow().Dump(2));
}

TEST(TortureEngine, BatchedWindowsHoldInvariantWithMultiRecordWindows) {
  // Group-commit torture: CAND commits between output events, so 4-record
  // windows genuinely accumulate. Every crash state must still satisfy
  // Save-work with the batched bound — the survivor is a *window end*, and
  // interrupted windows leave all-or-a-prefix of their records intact.
  ftx_torture::TortureSpec spec;
  spec.workload = "nvi";
  spec.protocol = "cand";
  spec.scale = 20;
  spec.seed = 17;
  spec.max_commit_windows = 6;
  spec.batch_records = 4;
  ftx_torture::TortureReport report = ftx_torture::ExploreCommitPath(spec, nullptr);

  EXPECT_EQ(report.violations, 0) << (report.violation_diagnostics.empty()
                                          ? ""
                                          : report.violation_diagnostics.front());
  EXPECT_EQ(report.batch_records, 4);
  EXPECT_GE(report.commits, 2);
  EXPECT_GT(report.crash_states, 0);
  EXPECT_GT(report.survivor_committed, 0);
  EXPECT_GT(report.replays, 0);
  EXPECT_EQ(report.replays, report.replays_consistent);
  // Interrupted multi-record windows strand intact-but-uncommitted tails.
  EXPECT_GT(report.tail_records_seen, 0);
}

TEST(TortureEngine, BatchedReportIsIdenticalAcrossPoolSizes) {
  ftx_torture::TortureSpec spec;
  spec.workload = "nvi";
  spec.protocol = "cand";
  spec.scale = 20;
  spec.seed = 17;
  spec.max_commit_windows = 4;
  spec.batch_records = 4;

  ftx::TrialPool pool4(4);
  ftx_torture::TortureReport serial = ftx_torture::ExploreCommitPath(spec, nullptr);
  ftx_torture::TortureReport parallel = ftx_torture::ExploreCommitPath(spec, &pool4);
  EXPECT_EQ(serial.ToJsonRow().Dump(2), parallel.ToJsonRow().Dump(2));
}

}  // namespace
