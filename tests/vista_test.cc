// Tests for the Vista transaction library: persistent segment with
// page-granularity undo, and the guarded heap allocator.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/vista/heap.h"
#include "src/vista/segment.h"

namespace {

using ftx_vista::Segment;
using ftx_vista::SegmentHeap;

// --- Segment ---

TEST(Segment, RoundsUpToWholePages) {
  Segment segment(5000, 4096);
  EXPECT_EQ(segment.size(), 8192u);
}

TEST(Segment, WriteReadRoundTrip) {
  Segment segment(16 * 1024);
  segment.WriteValue<int64_t>(100, -12345);
  EXPECT_EQ(segment.Read<int64_t>(100), -12345);
}

TEST(Segment, AbortRestoresLastCommit) {
  Segment segment(16 * 1024);
  segment.WriteValue<int32_t>(0, 1);
  segment.Commit();
  segment.WriteValue<int32_t>(0, 2);
  segment.WriteValue<int32_t>(8000, 3);
  segment.Abort();
  EXPECT_EQ(segment.Read<int32_t>(0), 1);
  EXPECT_EQ(segment.Read<int32_t>(8000), 0);
}

TEST(Segment, CommitMakesChangesDurable) {
  Segment segment(16 * 1024);
  segment.WriteValue<int32_t>(0, 7);
  segment.Commit();
  segment.Abort();  // nothing uncommitted: no-op
  EXPECT_EQ(segment.Read<int32_t>(0), 7);
}

TEST(Segment, DirtyPageTrackingIsPageGranular) {
  Segment segment(64 * 1024, 4096);
  EXPECT_EQ(segment.dirty_page_count(), 0u);
  segment.WriteValue<uint8_t>(0, 1);
  segment.WriteValue<uint8_t>(100, 2);  // same page
  EXPECT_EQ(segment.dirty_page_count(), 1u);
  segment.WriteValue<uint8_t>(5000, 3);  // second page
  EXPECT_EQ(segment.dirty_page_count(), 2u);
  // A write spanning a page boundary dirties both pages.
  uint8_t data[16] = {0};
  segment.Write(4096 * 3 - 8, data, 16);
  EXPECT_EQ(segment.dirty_page_count(), 4u);
}

TEST(Segment, UndoBytesMatchDirtyPages) {
  Segment segment(64 * 1024, 4096);
  segment.WriteValue<uint8_t>(0, 1);
  segment.WriteValue<uint8_t>(9000, 1);
  EXPECT_EQ(segment.undo_bytes(), 2 * 4096);
}

TEST(Segment, OpenForWriteAllowsInPlaceMutation) {
  Segment segment(16 * 1024);
  auto* p = reinterpret_cast<int32_t*>(segment.OpenForWrite(128, 8));
  p[0] = 11;
  p[1] = 22;
  segment.Abort();
  EXPECT_EQ(segment.Read<int32_t>(128), 0);  // barrier logged the page first
}

TEST(Segment, DirtyPagesSnapshotForRedo) {
  Segment segment(32 * 1024, 4096);
  segment.WriteValue<int32_t>(4096, 42);
  std::vector<std::pair<int64_t, ftx::Bytes>> pages;
  segment.ForEachPersistedDirtyPage([&](int64_t offset, const uint8_t* image, size_t size) {
    pages.emplace_back(offset, ftx::Bytes(image, image + size));
  });
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0].first, 4096);
  EXPECT_EQ(pages[0].second.size(), 4096u);
  int32_t value = 0;
  std::memcpy(&value, pages[0].second.data(), 4);
  EXPECT_EQ(value, 42);
}

TEST(Segment, InstallPageBypassesUndo) {
  Segment segment(16 * 1024, 4096);
  ftx::Bytes image(4096, 0x5a);
  segment.InstallPage(4096, image);
  EXPECT_EQ(segment.Read<uint8_t>(4096), 0x5a);
  EXPECT_EQ(segment.dirty_page_count(), 0u);
}

TEST(SegmentDeathTest, OutOfBoundsWriteAborts) {
  Segment segment(16 * 1024, 4096);
  int64_t v = 7;
  // Starts past the end.
  EXPECT_DEATH(segment.Write(16 * 1024, &v, sizeof(v)), "CHECK failed");
  // Starts in bounds, runs past the end.
  EXPECT_DEATH(segment.Write(16 * 1024 - 4, &v, sizeof(v)), "CHECK failed");
  // Negative offset.
  EXPECT_DEATH(segment.Write(-8, &v, sizeof(v)), "CHECK failed");
}

TEST(SegmentDeathTest, OutOfBoundsOpenForWriteAborts) {
  Segment segment(16 * 1024, 4096);
  EXPECT_DEATH(segment.OpenForWrite(16 * 1024, 1), "CHECK failed");
  EXPECT_DEATH(segment.OpenForWrite(16 * 1024 - 4, 8), "CHECK failed");
  EXPECT_DEATH(segment.OpenForWrite(-1, 1), "CHECK failed");
}

TEST(SegmentDeathTest, OutOfBoundsWriteAbortsEvenWithFastRangeCached) {
  Segment segment(16 * 1024, 4096);
  // Populate the cached fast range with the last page, then verify a write
  // running past the segment end still takes the checking slow path.
  segment.WriteValue<int64_t>(16 * 1024 - 4096, 1);
  int64_t v = 7;
  EXPECT_DEATH(segment.Write(16 * 1024 - 4, &v, sizeof(v)), "CHECK failed");
}

TEST(SegmentDeathTest, InstallPageWithUncommittedChangesAborts) {
  Segment segment(16 * 1024, 4096);
  segment.WriteValue<int64_t>(4096, 1);
  ftx::Bytes image(4096, 0x5a);
  EXPECT_DEATH(segment.InstallPage(4096, image), "CHECK failed");
}

TEST(Segment, ResetToZeroWipesEverything) {
  Segment segment(16 * 1024);
  segment.WriteValue<int64_t>(0, 999);
  segment.Commit();
  segment.WriteValue<int64_t>(8, 111);
  segment.ResetToZero();
  EXPECT_EQ(segment.Read<int64_t>(0), 0);
  EXPECT_EQ(segment.Read<int64_t>(8), 0);
  EXPECT_EQ(segment.dirty_page_count(), 0u);
}

TEST(Segment, CorruptBitIsRolledBackByAbort) {
  // Vista's COW traps wild stores like any other: rollback cleans them.
  Segment segment(16 * 1024);
  segment.WriteValue<uint8_t>(50, 0xf0);
  segment.Commit();
  uint32_t committed = segment.Checksum();
  segment.CorruptBit(50, 3);
  EXPECT_NE(segment.Checksum(), committed);
  segment.Abort();
  EXPECT_EQ(segment.Checksum(), committed);
}

TEST(Segment, ChecksumDetectsAnyChange) {
  Segment segment(16 * 1024);
  uint32_t empty = segment.Checksum();
  segment.WriteValue<uint8_t>(12345, 1);
  EXPECT_NE(segment.Checksum(), empty);
}

// The extent-based undo path: a small store captures only its chunk, a
// later store escaping the chunk widens the image to the whole page, and
// abort restores every byte either way.
TEST(Segment, WriteEscapingCapturedExtentStillAbortsCleanly) {
  Segment segment(8 * 1024, 4096);
  for (int64_t i = 0; i < 4096; i += 8) {
    segment.WriteValue<uint64_t>(i, static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull);
  }
  segment.Commit();
  uint32_t committed = segment.Checksum();

  // First touch: extent around offset 0. Second store lands far outside the
  // extent (same page), forcing the widen. Third store goes through the
  // now-page-wide fast range.
  segment.WriteValue<uint64_t>(0, 0xdeadbeefull);
  segment.WriteValue<uint64_t>(2048, 0xfeedfaceull);
  segment.WriteValue<uint64_t>(2056, 0xabad1deaull);
  EXPECT_EQ(segment.dirty_page_count(), 1u);
  segment.Abort();
  EXPECT_EQ(segment.Checksum(), committed);
}

TEST(Segment, NeighboringStoresShareOneExtent) {
  Segment segment(8 * 1024, 4096);
  segment.WriteValue<uint64_t>(512, 1u);
  segment.Commit();
  uint32_t committed = segment.Checksum();

  // All inside one 256-byte chunk: a single captured extent covers them.
  for (int64_t i = 512; i < 768; i += 8) {
    segment.WriteValue<uint64_t>(i, static_cast<uint64_t>(i));
  }
  segment.Abort();
  EXPECT_EQ(segment.Checksum(), committed);
}

TEST(Segment, SilentStoreThenRealStoreOutsideFirstTouchRange) {
  Segment segment(8 * 1024, 4096);
  segment.WriteValue<uint64_t>(0, 7u);
  segment.WriteValue<uint64_t>(3000, 9u);
  segment.Commit();
  uint32_t committed = segment.Checksum();

  // Silent store: page goes dirty-pending, nothing materialized. The later
  // content-changing store at a different offset must capture its own
  // extent, and abort must restore both regions.
  segment.WriteValue<uint64_t>(0, 7u);     // same value — silent
  segment.WriteValue<uint64_t>(3000, 1u);  // real change
  segment.Abort();
  EXPECT_EQ(segment.Checksum(), committed);
  EXPECT_EQ(segment.Read<uint64_t>(0), 7u);
  EXPECT_EQ(segment.Read<uint64_t>(3000), 9u);
}

class SegmentProperty : public ::testing::TestWithParam<uint64_t> {};

// Property: any interleaving of writes/commits/aborts leaves the segment
// exactly at its last committed image.
TEST_P(SegmentProperty, AbortAlwaysRestoresLastCommittedImage) {
  ftx::Rng rng(GetParam());
  Segment segment(64 * 1024, 4096);
  uint32_t committed_checksum = segment.Checksum();

  for (int step = 0; step < 300; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.75) {
      int64_t offset = static_cast<int64_t>(rng.NextBounded(segment.size() - 8));
      segment.WriteValue<uint64_t>(offset, rng.NextU64());
    } else if (roll < 0.88) {
      segment.Commit();
      committed_checksum = segment.Checksum();
    } else {
      segment.Abort();
      EXPECT_EQ(segment.Checksum(), committed_checksum);
    }
  }
  segment.Abort();
  EXPECT_EQ(segment.Checksum(), committed_checksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentProperty, ::testing::Range<uint64_t>(1, 13));

// Property: against a trivially-correct reference model (a pair of byte
// vectors plus page sets), random interleavings of every mutating operation
// keep the bitmap/lazy-materialization segment byte-identical in content,
// checksum, and dirty accounting. This is the harness that pins down the
// fast-path/silent-store/pooled-arena machinery: any divergence between the
// engineered barrier and the obvious semantics fails here.
TEST_P(SegmentProperty, MatchesReferenceModelUnderRandomInterleavings) {
  constexpr size_t kPage = 4096;
  constexpr size_t kSize = 64 * 1024;
  constexpr size_t kPages = kSize / kPage;
  ftx::Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);

  Segment segment(kSize, kPage);
  std::vector<uint8_t> shadow(kSize, 0);     // current content
  std::vector<uint8_t> committed(kSize, 0);  // last committed content
  std::set<size_t> dirty;                    // pages touched since commit
  std::set<size_t> volatile_pages;

  auto touch = [&](size_t offset, size_t size) {
    for (size_t page = offset / kPage; page <= (offset + size - 1) / kPage; ++page) {
      dirty.insert(page);
    }
  };
  auto persisted = [&] {
    size_t n = 0;
    for (size_t page : dirty) {
      n += volatile_pages.count(page) == 0 ? 1 : 0;
    }
    return n;
  };

  for (int step = 0; step < 400; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.45) {
      // Plain write; half the time rewrite bytes already present (a silent
      // store — must still count the pages dirty).
      size_t size = 1 + rng.NextBounded(64);
      size_t offset = rng.NextBounded(kSize - size + 1);
      std::vector<uint8_t> src(size);
      if (rng.NextBernoulli(0.5)) {
        std::memcpy(src.data(), shadow.data() + offset, size);
      } else {
        for (auto& b : src) {
          b = static_cast<uint8_t>(rng.NextU64());
        }
      }
      segment.Write(static_cast<int64_t>(offset), src.data(), size);
      std::memcpy(shadow.data() + offset, src.data(), size);
      touch(offset, size);
    } else if (roll < 0.60) {
      // In-place mutation through the raw pointer.
      size_t size = 1 + rng.NextBounded(32);
      size_t offset = rng.NextBounded(kSize - size + 1);
      uint8_t* p = segment.OpenForWrite(static_cast<int64_t>(offset), size);
      for (size_t i = 0; i < size; ++i) {
        p[i] = shadow[offset + i] = static_cast<uint8_t>(rng.NextU64() >> 32);
      }
      touch(offset, size);
    } else if (roll < 0.65) {
      size_t page = rng.NextBounded(kPages);
      segment.MarkVolatile(static_cast<int64_t>(page * kPage), kPage);
      volatile_pages.insert(page);
    } else if (roll < 0.80) {
      segment.Commit();
      committed = shadow;
      dirty.clear();
    } else if (roll < 0.95) {
      segment.Abort();
      shadow = committed;
      dirty.clear();
    } else {
      segment.ResetToZero();
      std::fill(shadow.begin(), shadow.end(), 0);
      committed = shadow;
      dirty.clear();
    }

    ASSERT_EQ(segment.dirty_page_count(), dirty.size()) << "step " << step;
    ASSERT_EQ(segment.persisted_dirty_page_count(), persisted()) << "step " << step;
    ASSERT_EQ(segment.undo_bytes(), static_cast<int64_t>(dirty.size() * kPage));
    ASSERT_EQ(segment.HasUncommittedChanges(), !dirty.empty());
    if (step % 20 == 0) {
      ASSERT_EQ(std::memcmp(segment.data(), shadow.data(), kSize), 0) << "step " << step;
      ASSERT_EQ(segment.Checksum(), ftx::Crc32(shadow.data(), kSize));
      // Range checksum agrees with a straight CRC of the model bytes.
      size_t size = 1 + rng.NextBounded(3 * kPage);
      size_t offset = rng.NextBounded(kSize - size + 1);
      ASSERT_EQ(segment.Checksum(static_cast<int64_t>(offset), size),
                ftx::Crc32(shadow.data() + offset, size));
    }
  }
  ASSERT_EQ(std::memcmp(segment.data(), shadow.data(), kSize), 0);
}

// --- SegmentHeap ---

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : segment_(256 * 1024), heap_(&segment_, 4096, 128 * 1024) { heap_.Format(); }
  Segment segment_;
  SegmentHeap heap_;
};

TEST_F(HeapTest, AllocReturnsUsableOffsets) {
  auto a = heap_.Alloc(100);
  auto b = heap_.Alloc(200);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  segment_.WriteValue<int64_t>(*a, 1);
  segment_.WriteValue<int64_t>(*b, 2);
  EXPECT_EQ(segment_.Read<int64_t>(*a), 1);
  EXPECT_TRUE(heap_.CheckGuards().ok());
}

TEST_F(HeapTest, FreeAndReuse) {
  auto a = heap_.Alloc(1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap_.Free(*a).ok());
  auto b = heap_.Alloc(1000);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // first-fit reuses the freed block
}

TEST_F(HeapTest, DoubleFreeRejected) {
  auto a = heap_.Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap_.Free(*a).ok());
  EXPECT_FALSE(heap_.Free(*a).ok());
}

TEST_F(HeapTest, FreeOfWildPointerRejected) {
  EXPECT_FALSE(heap_.Free(1).ok());
  EXPECT_FALSE(heap_.Free(4096 + 123457).ok());
}

TEST_F(HeapTest, ExhaustionReportsResourceExhausted) {
  auto big = heap_.Alloc(200 * 1024);  // larger than the arena
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), ftx::StatusCode::kResourceExhausted);
}

TEST_F(HeapTest, CoalescingRecoversFragmentedSpace) {
  std::vector<int64_t> blocks;
  for (int i = 0; i < 8; ++i) {
    auto block = heap_.Alloc(8 * 1024);
    ASSERT_TRUE(block.ok());
    blocks.push_back(*block);
  }
  for (int64_t block : blocks) {
    ASSERT_TRUE(heap_.Free(block).ok());
  }
  // After freeing everything, one large allocation must fit again.
  auto big = heap_.Alloc(100 * 1024);
  EXPECT_TRUE(big.ok());
}

TEST_F(HeapTest, GuardsDetectOverrun) {
  auto a = heap_.Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap_.CheckGuards().ok());
  // Write one byte past the payload: into the tail guard.
  segment_.WriteValue<uint8_t>(*a + 64, 0x00);
  ftx::Status status = heap_.CheckGuards();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ftx::StatusCode::kDataLoss);
}

TEST_F(HeapTest, GuardsDetectHeaderCorruption) {
  auto a = heap_.Alloc(64);
  ASSERT_TRUE(a.ok());
  segment_.WriteValue<uint64_t>(*a - 16, 0xdeadbeef);  // smash the magic
  EXPECT_FALSE(heap_.CheckGuards().ok());
}

TEST_F(HeapTest, LiveBlocksEnumeratesAllocations) {
  auto a = heap_.Alloc(100);
  auto b = heap_.Alloc(200);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto blocks = heap_.LiveBlocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].first, *a);
  EXPECT_GE(blocks[0].second, 100);
  EXPECT_EQ(blocks[1].first, *b);
  ASSERT_TRUE(heap_.Free(*a).ok());
  EXPECT_EQ(heap_.LiveBlocks().size(), 1u);
}

class HeapProperty : public ::testing::TestWithParam<uint64_t> {};

// Property: random alloc/free churn never corrupts heap metadata, payload
// writes never smash guards, and all live payloads retain their contents.
TEST_P(HeapProperty, RandomChurnKeepsInvariants) {
  ftx::Rng rng(GetParam());
  Segment segment(512 * 1024);
  SegmentHeap heap(&segment, 0, 256 * 1024);
  heap.Format();

  std::map<int64_t, std::pair<int64_t, uint8_t>> live;  // offset -> (size, fill)
  for (int step = 0; step < 400; ++step) {
    if (live.size() < 20 && rng.NextBernoulli(0.6)) {
      int64_t size = static_cast<int64_t>(8 + rng.NextBounded(2000));
      auto block = heap.Alloc(size);
      if (block.ok()) {
        auto fill = static_cast<uint8_t>(1 + rng.NextBounded(255));
        uint8_t* p = segment.OpenForWrite(*block, static_cast<size_t>(size));
        std::fill(p, p + size, fill);
        live[*block] = {size, fill};
      }
    } else if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, static_cast<int64_t>(rng.NextBounded(live.size())));
      ASSERT_TRUE(heap.Free(it->first).ok());
      live.erase(it);
    }
    ASSERT_TRUE(heap.CheckGuards().ok()) << "step " << step;
  }
  // All surviving payloads intact.
  for (const auto& [offset, info] : live) {
    for (int64_t i = 0; i < info.first; i += 97) {
      EXPECT_EQ(segment.Read<uint8_t>(offset + i), info.second);
    }
  }
  EXPECT_EQ(heap.LiveBlocks().size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty, ::testing::Range<uint64_t>(1, 13));

}  // namespace
